// Command gcbench regenerates the tables and figures of "A Parallel,
// Incremental and Concurrent GC for Servers" (Ossia et al., PLDI 2002).
//
// Usage:
//
//	gcbench -exp fig1              # one experiment
//	gcbench -exp fig1,table1,javac # several
//	gcbench -exp all               # everything
//	gcbench -exp all -scale paper  # at the paper's heap sizes (slow)
//
// Experiments: fig1, fig2, table1, table2, table3, table4, javac, packets,
// fences, mmu, gen, frag, ablate. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcgc/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiments: fig1,fig2,table1,table2,table3,table4,javac,packets,fences,mmu,gen,frag,ablate,all")
		scaleFlag = flag.String("scale", "default", "experiment sizing: quick, default, paper")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "gcbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	section := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fmt.Printf("==== %s ====\n\n", name)
		f()
		fmt.Printf("\n(%s computed in %.1fs of real time)\n\n", name, time.Since(start).Seconds())
	}

	// Tables 1-3 share their runs; compute lazily once.
	var rates []experiments.TracingRateResult
	ratesOnce := func() []experiments.TracingRateResult {
		if rates == nil {
			rates = experiments.TracingRates(sc, nil, 8)
		}
		return rates
	}

	section("fig1", func() { fmt.Println(experiments.RenderFig1(experiments.Fig1(sc, 8))) })
	section("fig2", func() { fmt.Println(experiments.RenderFig2(experiments.Fig2(sc, 40, 80, 10))) })
	section("table1", func() { fmt.Println(experiments.RenderTable1(ratesOnce())) })
	section("table2", func() { fmt.Println(experiments.RenderTable2(ratesOnce())) })
	section("table3", func() { fmt.Println(experiments.RenderTable3(ratesOnce())) })
	section("table4", func() { fmt.Println(experiments.RenderTable4(experiments.Table4(sc, nil, 1000))) })
	section("javac", func() { fmt.Println(experiments.RenderJavac(experiments.Javac(sc))) })
	section("packets", func() { fmt.Println(experiments.RenderPacketMem(experiments.PacketMem(sc))) })
	section("fences", func() { fmt.Println(experiments.RenderFences(experiments.Fences(sc))) })
	section("mmu", func() { fmt.Println(experiments.RenderMMU(experiments.MMU(sc))) })
	section("gen", func() { fmt.Println(experiments.RenderGenerational(experiments.Generational(sc))) })
	section("frag", func() { fmt.Println(experiments.RenderFragmentation(experiments.Fragmentation(sc))) })
	section("ablate", func() { fmt.Println(experiments.RenderAblations(experiments.Ablations(sc))) })

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "gcbench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}

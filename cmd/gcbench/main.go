// Command gcbench regenerates the tables and figures of "A Parallel,
// Incremental and Concurrent GC for Servers" (Ossia et al., PLDI 2002).
//
// Usage:
//
//	gcbench -exp fig1              # one experiment
//	gcbench -exp fig1,table1,javac # several
//	gcbench -exp all               # everything
//	gcbench -exp all -scale paper  # at the paper's heap sizes (slow)
//	gcbench -exp all -j 8          # up to 8 simulator runs in parallel
//	gcbench -exp all -json out.json # machine-readable results
//	gcbench -exp fig1 -metrics m.jsonl -trace t.json
//	                               # per-run telemetry + Chrome trace timeline
//
// Every simulated VM is deterministic and single-goroutine, so the
// experiment matrix fans out across host cores (-j, defaulting to
// GOMAXPROCS) while the printed tables stay byte-identical to a
// sequential run.
//
// Experiments: fig1, fig2, table1, table2, table3, table4, javac, packets,
// fences, mmu, gen, frag, ablate. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"mcgc/internal/experiments"
	"mcgc/internal/pacing"
	"mcgc/internal/runmeta"
	"mcgc/internal/runner"
	"mcgc/internal/telemetry"
)

// expNames lists the valid experiments in suite order.
var expNames = []string{
	"fig1", "fig2", "table1", "table2", "table3", "table4",
	"javac", "packets", "fences", "mmu", "gen", "frag", "ablate",
}

// expResult is one experiment's entry in the -json results file.
type expResult struct {
	Name        string             `json:"name"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Runner      []runner.Stats     `json:"runner,omitempty"`
}

// resultsFile is the -json schema: per-experiment wall-clock and headline
// metrics, plus the runner telemetry (per-job wall-clock, host allocation,
// peak heap, achieved speedup) for the perf trajectory. The embedded
// runmeta.Suite is the same struct the telemetry sinks stamp on -metrics
// and -trace output, so the files cross-reference by identical fields.
type resultsFile struct {
	runmeta.Suite
	TotalSeconds float64     `json:"total_seconds"`
	Experiments  []expResult `json:"experiments"`
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiments: "+strings.Join(expNames, ",")+",all")
		scaleFlag   = flag.String("scale", "default", "experiment sizing: quick, default, paper")
		jFlag       = flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulator runs per experiment (1 = sequential)")
		jsonFlag    = flag.String("json", "", "write machine-readable per-experiment results to this file")
		metricsFlag = flag.String("metrics", "", "write per-run telemetry (counters, gauges, histograms) as JSONL to this file")
		traceFlag   = flag.String("trace", "", "write a Chrome trace_event timeline (load in Perfetto or chrome://tracing) to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	// -k0 (shared pacing vocabulary, see internal/pacing) sets the tracing
	// rate for the single-rate experiments; the Tables 1-3 sweep spans its
	// own rate grid regardless.
	k0 := 8.0
	pacing.BindRate(flag.CommandLine, &k0)
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "gcbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	valid := map[string]bool{"all": true}
	for _, n := range expNames {
		valid[n] = true
	}
	want := map[string]bool{}
	var unknown []string
	for _, e := range strings.Split(*expFlag, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !valid[e] {
			unknown = append(unknown, e)
			continue
		}
		want[e] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "gcbench: unknown experiment(s) %s\nvalid experiments: %s, all\n",
			strings.Join(unknown, ", "), strings.Join(expNames, ", "))
		os.Exit(2)
	}
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "gcbench: no experiment matched %q\nvalid experiments: %s, all\n",
			*expFlag, strings.Join(expNames, ", "))
		os.Exit(2)
	}

	if *jFlag <= 0 { // match the runner's fallback so reports show the effective value
		*jFlag = runtime.GOMAXPROCS(0)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ex := experiments.Parallel(*jFlag)
	var collector *telemetry.Collector
	if *metricsFlag != "" || *traceFlag != "" {
		collector = telemetry.NewCollector(*traceFlag != "")
		ex.Telemetry = collector
	}
	all := want["all"]
	out := resultsFile{
		Suite: runmeta.Suite{
			Scale:      *scaleFlag,
			J:          *jFlag,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			StartedAt:  time.Now().UTC().Format(time.RFC3339),
		},
	}
	suiteStart := time.Now()

	// noteHost folds the runner's wall-clock telemetry into the collector's
	// host registry (host time is real, not virtual, so it lives apart from
	// the per-run deterministic metrics).
	hostSecondsBounds := []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500}
	noteHost := func(sts []runner.Stats) {
		if collector == nil {
			return
		}
		host := collector.Host()
		for _, st := range sts {
			host.Counter("host.batches").Add(1)
			host.Counter("host.jobs").Add(int64(len(st.Jobs)))
			host.Histogram("host.batch_wall_seconds", hostSecondsBounds...).Observe(st.WallSeconds)
			host.Histogram("host.batch_job_seconds", hostSecondsBounds...).Observe(st.JobSeconds)
			if peak := host.Counter("host.peak_heap_bytes"); st.PeakHeapBytes > peak.Value() {
				peak.Set(st.PeakHeapBytes)
			}
		}
	}

	section := func(name string, f func() (render string, metrics map[string]float64)) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s ====\n\n", name)
		render, metrics := f()
		fmt.Println(render)
		wall := time.Since(start).Seconds()
		fmt.Printf("\n(%s computed in %.1fs of real time)\n\n", name, wall)
		sts := ex.TakeStats()
		noteHost(sts)
		out.Experiments = append(out.Experiments, expResult{
			Name:        name,
			WallSeconds: wall,
			Metrics:     metrics,
			Runner:      sts,
		})
	}

	// Tables 1-3 share their runs; compute lazily once (the shared sweep's
	// wall-clock and telemetry land on whichever table runs first).
	var rates []experiments.TracingRateResult
	ratesOnce := func() []experiments.TracingRateResult {
		if rates == nil {
			rates = experiments.TracingRates(ex, sc, nil, int(k0))
		}
		return rates
	}
	rateMetric := func(rs []experiments.TracingRateResult, pick func(experiments.TracingRateResult) float64) map[string]float64 {
		m := map[string]float64{}
		for _, r := range rs {
			key := strings.ReplaceAll(strings.ToLower(r.Label), " ", "")
			m[key] = pick(r)
		}
		return m
	}

	section("fig1", func() (string, map[string]float64) {
		rows := experiments.Fig1(ex, sc, int(k0))
		last := rows[len(rows)-1]
		m := map[string]float64{
			"stw_avg_pause_ms": last.STWAvgMs,
			"stw_max_pause_ms": last.STWMaxMs,
			"cgc_avg_pause_ms": last.CGCAvgMs,
			"cgc_max_pause_ms": last.CGCMaxMs,
		}
		if last.STWThroughput > 0 {
			m["throughput_ratio"] = last.CGCThroughput / last.STWThroughput
		}
		return experiments.RenderFig1(rows), m
	})
	section("fig2", func() (string, map[string]float64) {
		rows := experiments.Fig2(ex, sc, 40, 80, 10)
		last := rows[len(rows)-1]
		m := map[string]float64{
			"stw_avg_pause_ms": last.STWAvgMs,
			"cgc_avg_pause_ms": last.CGCAvgMs,
			"occupancy_pct":    last.OccupancyPct,
		}
		if last.CGCAvgMs > 0 {
			m["sweep_share_of_pause"] = last.CGCSweepAvgMs / last.CGCAvgMs
		}
		return experiments.RenderFig2(rows), m
	})
	section("table1", func() (string, map[string]float64) {
		rs := ratesOnce()
		return experiments.RenderTable1(rs), rateMetric(rs, func(r experiments.TracingRateResult) float64 { return r.AvgPauseMs })
	})
	section("table2", func() (string, map[string]float64) {
		rs := ratesOnce()
		return experiments.RenderTable2(rs), rateMetric(rs, func(r experiments.TracingRateResult) float64 { return r.CardsLeftPct })
	})
	section("table3", func() (string, map[string]float64) {
		rs := ratesOnce()
		return experiments.RenderTable3(rs), rateMetric(rs, func(r experiments.TracingRateResult) float64 { return 100 * r.Utilization })
	})
	section("table4", func() (string, map[string]float64) {
		rows := experiments.Table4(ex, sc, nil, 1000)
		last := rows[len(rows)-1]
		return experiments.RenderTable4(rows), map[string]float64{
			"tracing_factor":  last.AvgTracingFactor,
			"fairness_stddev": last.Fairness,
			"cas_per_mb_live": last.AvgCostPerMB,
		}
	})
	section("javac", func() (string, map[string]float64) {
		r := experiments.Javac(ex, sc)
		return experiments.RenderJavac(r), map[string]float64{
			"stw_avg_pause_ms":    r.STWAvgMs,
			"cgc_avg_pause_ms":    r.CGCAvgMs,
			"throughput_loss_pct": r.ThroughputLossPct,
		}
	})
	section("packets", func() (string, map[string]float64) {
		r := experiments.PacketMem(ex, sc)
		return experiments.RenderPacketMem(r), map[string]float64{
			"lower_bound_pct_heap": r.LowerBoundPct,
			"upper_bound_pct_heap": r.UpperBoundPct,
		}
	})
	section("fences", func() (string, map[string]float64) {
		r := experiments.Fences(ex, sc)
		m := map[string]float64{
			"packet_fences":            float64(r.Acc.PacketFences),
			"alloc_fences":             float64(r.Acc.AllocFences),
			"anomalies_without_fences": float64(r.PacketWithout.Anomalies + r.AllocWithout.Anomalies + r.CardWithout.Anomalies),
			"anomalies_with_fences":    float64(r.PacketWith.Anomalies + r.AllocWith.Anomalies + r.CardWith.Anomalies),
		}
		if r.Acc.AllocFences > 0 {
			m["objects_per_alloc_fence"] = float64(r.ObjectsAlloc) / float64(r.Acc.AllocFences)
		}
		return experiments.RenderFences(r), m
	})
	section("mmu", func() (string, map[string]float64) {
		r := experiments.MMU(ex, sc)
		last := len(r.WindowsMs) - 1
		return experiments.RenderMMU(r), map[string]float64{
			"stw_mmu_large_window_pct": 100 * r.STW[last],
			"cgc_mmu_large_window_pct": 100 * r.CGC[last],
		}
	})
	section("gen", func() (string, map[string]float64) {
		r := experiments.Generational(ex, sc)
		return experiments.RenderGenerational(r), map[string]float64{
			"minor_avg_pause_ms": r.GenMinorAvgMs,
			"major_avg_pause_ms": r.GenMajorAvgMs,
			"cgc_avg_pause_ms":   r.CGCAvgMs,
			"promoted_mb":        r.GenPromotedMB,
		}
	})
	section("frag", func() (string, map[string]float64) {
		r := experiments.Fragmentation(ex, sc)
		return experiments.RenderFragmentation(r), map[string]float64{
			"plain_frag_index":   r.PlainIndex,
			"compact_frag_index": r.CompactIndex,
			"evacuated_mb":       r.EvacuatedMB,
		}
	})
	section("ablate", func() (string, map[string]float64) {
		rows := experiments.Ablations(ex, sc)
		m := map[string]float64{}
		for _, r := range rows {
			switch r.Name {
			case "baseline (combined, 1 card pass)":
				m["baseline_avg_pause_ms"] = r.AvgPauseMs
			case "lazy sweep":
				m["lazysweep_avg_pause_ms"] = r.AvgPauseMs
			}
		}
		return experiments.RenderAblations(rows), m
	})

	out.TotalSeconds = time.Since(suiteStart).Seconds()
	var jobSeconds float64
	for _, e := range out.Experiments {
		for _, st := range e.Runner {
			jobSeconds += st.JobSeconds
		}
	}
	if out.TotalSeconds > 0 && jobSeconds > 0 {
		fmt.Printf("suite: %d experiment(s) in %.1fs wall (%.1fs of simulator work, %.2fx speedup, -j %d)\n",
			len(out.Experiments), out.TotalSeconds, jobSeconds, jobSeconds/out.TotalSeconds, *jFlag)
	}

	if *jsonFlag != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonFlag, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -json: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsFlag != "" {
		f, err := os.Create(*metricsFlag)
		if err == nil {
			err = collector.WriteJSONL(f, out.Suite)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err == nil {
			err = collector.WriteTrace(f, out.Suite)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"mcgc/internal/stats"
)

// The -balance view reduces the trace.worker.* counter families and the
// trace.term_latency_ns gauge to the Section 6.3 load-balancing quantities:
// per-worker work flow, the skew of traced words across parallel tracers
// (max/mean and Gini), the idle fraction of the concurrent-mark phase, the
// steal-hit rate, and termination-detection latency percentiles.

// workerRow is one worker's end-of-run ledger pulled back out of the
// trace.worker.<key>.* counters a live run emits.
type workerRow struct {
	Key           string `json:"key"`
	Kind          string `json:"kind"` // "dedicated", "bg" or "tax", from the key prefix
	Words         int64  `json:"words"`
	Objects       int64  `json:"objects,omitempty"`
	AcqGlobal     int64  `json:"acq_global,omitempty"`
	AcqLocal      int64  `json:"acq_local,omitempty"`
	AcqSteal      int64  `json:"acq_steal,omitempty"`
	Produced      int64  `json:"produced,omitempty"`
	StealAttempts int64  `json:"steal_attempts,omitempty"`
	StealHits     int64  `json:"steal_hits,omitempty"`
	IdleNs        int64  `json:"idle_ns,omitempty"`
	PoolNs        int64  `json:"pool_ns,omitempty"`
	Hoarded       int64  `json:"hoarded,omitempty"`
}

// kindOfKey maps a worker key to its kind: d<i> dedicated, b<i> background,
// m<i> mutator allocation tax.
func kindOfKey(key string) string {
	switch {
	case strings.HasPrefix(key, "b"):
		return "bg"
	case strings.HasPrefix(key, "m"):
		return "tax"
	default:
		return "dedicated"
	}
}

// workerRows extracts and sorts the per-worker counters of one run. Keys are
// sorted dedicated first, then background, then tax, numerically within each.
func workerRows(counters map[string]int64) []workerRow {
	byKey := map[string]*workerRow{}
	for name, v := range counters {
		rest, ok := strings.CutPrefix(name, "trace.worker.")
		if !ok {
			continue
		}
		i := strings.IndexByte(rest, '.')
		if i < 0 {
			continue
		}
		key, metric := rest[:i], rest[i+1:]
		w := byKey[key]
		if w == nil {
			w = &workerRow{Key: key, Kind: kindOfKey(key)}
			byKey[key] = w
		}
		switch metric {
		case "words":
			w.Words = v
		case "objects":
			w.Objects = v
		case "acq_global":
			w.AcqGlobal = v
		case "acq_local":
			w.AcqLocal = v
		case "acq_steal":
			w.AcqSteal = v
		case "produced":
			w.Produced = v
		case "steal_attempts":
			w.StealAttempts = v
		case "steal_hits":
			w.StealHits = v
		case "idle_ns":
			w.IdleNs = v
		case "pool_ns":
			w.PoolNs = v
		case "hoarded":
			w.Hoarded = v
		}
	}
	rank := map[string]int{"dedicated": 0, "bg": 1, "tax": 2}
	out := make([]workerRow, 0, len(byKey))
	for _, w := range byKey {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := rank[out[i].Kind], rank[out[j].Kind]; ri != rj {
			return ri < rj
		}
		// Numeric order within a kind: shorter keys first ("d2" < "d10").
		if len(out[i].Key) != len(out[j].Key) {
			return len(out[i].Key) < len(out[j].Key)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// balanceReport is one run's reduction; -balance renders it as text, -json as
// a machine-readable record (the balance-bench sweep collects those).
type balanceReport struct {
	Run       string      `json:"run"`
	Collector string      `json:"collector,omitempty"`
	Tracers   int         `json:"tracers"` // parallel (non-tax) workers
	Skew      float64     `json:"skew_max_mean"`
	Gini      float64     `json:"gini"`
	IdleFrac  float64     `json:"idle_fraction"`
	StealHit  float64     `json:"steal_hit_rate"`
	TermN     int         `json:"term_samples"`
	TermP50Ns float64     `json:"term_p50_ns,omitempty"`
	TermP95Ns float64     `json:"term_p95_ns,omitempty"`
	TermMaxNs float64     `json:"term_max_ns,omitempty"`
	Hoarded   int64       `json:"hoarded,omitempty"`
	Workers   []workerRow `json:"workers"`
}

// reduceBalance computes one run's balance quantities. Mutator-tax workers
// appear in the per-worker rows but are excluded from the skew, Gini and idle
// aggregates: they trace on the allocation clock, not in the parallel race.
func reduceBalance(r *runData) (balanceReport, error) {
	rows := workerRows(r.counters)
	if len(rows) == 0 {
		return balanceReport{}, fmt.Errorf("run %q has no trace.worker.* counters (accounting off?)", r.name)
	}
	rep := balanceReport{Run: r.name, Collector: r.collector, Workers: rows}

	var words []float64
	var idle, hits, attempts int64
	for _, w := range rows {
		rep.Hoarded += w.Hoarded
		if w.Kind == "tax" {
			continue
		}
		rep.Tracers++
		words = append(words, float64(w.Words))
		idle += w.IdleNs
		hits += w.StealHits
		attempts += w.StealAttempts
	}
	var sum, max float64
	for _, v := range words {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum > 0 {
		rep.Skew = max / (sum / float64(len(words)))
		rep.Gini = stats.Gini(words)
	}
	// Idle fraction: summed tracer idle over the total tracer-time of the
	// markingActive windows (concurrent mark plus the STW final and oracle,
	// the full span during which tracers accrue idle). Older files without
	// that counter fall back to the bare mark time.
	activeNs := r.counters["live.tracer_active_ns_total"]
	if activeNs == 0 {
		activeNs = r.counters["live.mark_ns_total"]
	}
	if activeNs > 0 && rep.Tracers > 0 {
		rep.IdleFrac = float64(idle) / (float64(activeNs) * float64(rep.Tracers))
	}
	if attempts > 0 {
		rep.StealHit = float64(hits) / float64(attempts)
	}
	if lat := r.gauges["trace.term_latency_ns"]; len(lat.v) > 0 {
		qs := stats.QuantilesF(lat.v, 0.5, 0.95, 1.0)
		rep.TermN = len(lat.v)
		rep.TermP50Ns, rep.TermP95Ns, rep.TermMaxNs = qs[0], qs[1], qs[2]
	}
	return rep, nil
}

// balance prints the per-run balance reduction; with jsonOut it emits one
// JSON object per run instead (JSONL, so sweeps can cat and append).
func balance(path, filter string, jsonOut bool) error {
	runs, err := readRuns(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	reported := 0
	for _, r := range runs {
		if r.name == "host" || (filter != "" && !strings.Contains(r.name, filter)) {
			continue
		}
		rep, err := reduceBalance(r)
		if err != nil {
			return err
		}
		reported++
		if jsonOut {
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("== %s (%s)\n", rep.Run, rep.Collector)
		fmt.Printf("   balance: %d tracers  skew max/mean %.3f  gini %.4f  idle %.1f%%  steal hits %.1f%%\n",
			rep.Tracers, rep.Skew, rep.Gini, 100*rep.IdleFrac, 100*rep.StealHit)
		if rep.TermN > 0 {
			fmt.Printf("   termination: %d samples  p50 %.1fµs  p95 %.1fµs  max %.1fµs\n",
				rep.TermN, rep.TermP50Ns/1e3, rep.TermP95Ns/1e3, rep.TermMaxNs/1e3)
		} else {
			fmt.Printf("   termination: no latency samples (detection was immediate every cycle)\n")
		}
		if rep.Hoarded > 0 {
			fmt.Printf("   HOARDING: %d packets withheld by a pool.hoard fault\n", rep.Hoarded)
		}
		tbl := stats.NewTable("worker", "kind", "words", "share", "acq g/l/s", "produced", "steals", "idle ms", "pool ms")
		var total float64
		for _, w := range rep.Workers {
			if w.Kind != "tax" {
				total += float64(w.Words)
			}
		}
		for _, w := range rep.Workers {
			share := "-"
			if w.Kind != "tax" && total > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(w.Words)/total)
			}
			steals := fmt.Sprintf("%d/%d", w.StealHits, w.StealAttempts)
			tbl.AddRow(w.Key, w.Kind, fmt.Sprint(w.Words), share,
				fmt.Sprintf("%d/%d/%d", w.AcqGlobal, w.AcqLocal, w.AcqSteal),
				fmt.Sprint(w.Produced), steals,
				fmt.Sprintf("%.1f", float64(w.IdleNs)/1e6),
				fmt.Sprintf("%.1f", float64(w.PoolNs)/1e6))
		}
		fmt.Print(indent(tbl.String(), "   "))
		fmt.Println()
	}
	if reported == 0 {
		return fmt.Errorf("no runs matched (file has %d runs)", len(runs))
	}
	return nil
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pre + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// checkHoard is the balance-smoke gate: the metrics file must contain both
// clean runs and runs where the pool.hoard fault fired, and the hoard runs
// must show strictly worse imbalance (mean words-Gini) and strictly worse
// mean termination-detection latency. This is what "the fault demonstrably
// moves the balance numbers" means in CI.
func checkHoard(path string) error {
	runs, err := readRuns(path)
	if err != nil {
		return err
	}
	var cleanGini, hoardGini, cleanTerm, hoardTerm []float64
	var hoarded int64
	for _, r := range runs {
		if r.name == "host" {
			continue
		}
		rep, err := reduceBalance(r)
		if err != nil {
			return err
		}
		var term float64
		if lat := r.gauges["trace.term_latency_ns"]; len(lat.v) > 0 {
			for _, v := range lat.v {
				term += v
			}
			term /= float64(len(lat.v))
		}
		if r.counters["fault.pool.hoard.fires"] > 0 {
			if rep.Hoarded == 0 {
				return fmt.Errorf("run %q: pool.hoard fired but no trace.worker.*.hoarded counter", r.name)
			}
			hoarded += rep.Hoarded
			hoardGini = append(hoardGini, rep.Gini)
			hoardTerm = append(hoardTerm, term)
		} else {
			cleanGini = append(cleanGini, rep.Gini)
			cleanTerm = append(cleanTerm, term)
		}
	}
	if len(cleanGini) == 0 || len(hoardGini) == 0 {
		return fmt.Errorf("need both clean and pool.hoard runs in one file (got %d clean, %d hoard)",
			len(cleanGini), len(hoardGini))
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	cg, hg, ct, ht := mean(cleanGini), mean(hoardGini), mean(cleanTerm), mean(hoardTerm)
	fmt.Printf("hoard check: %d clean + %d hoard runs (%d packets hoarded)\n",
		len(cleanGini), len(hoardGini), hoarded)
	fmt.Printf("   words gini:   clean %.4f  hoard %.4f\n", cg, hg)
	fmt.Printf("   term latency: clean %.1fµs  hoard %.1fµs (means)\n", ct/1e3, ht/1e3)
	if hg <= cg {
		return fmt.Errorf("pool.hoard did not worsen words-Gini (clean %.4f, hoard %.4f)", cg, hg)
	}
	if ht <= ct {
		return fmt.Errorf("pool.hoard did not worsen termination latency (clean %.1fµs, hoard %.1fµs)", ct/1e3, ht/1e3)
	}
	fmt.Println("   ok: hoarding measurably worsens both imbalance and termination latency")
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// latency reduces gcserve runs: request throughput and latency tail from the
// server.req_ns histogram, GC pauses and MMU from the collector's own
// telemetry, and the correlation between the two — per time window, the
// worst request latency against the worst pause, which is the paper's
// server-side claim (short pauses ⇒ short request tails) made measurable.
func latency(path, filter string, jsonOut bool) error {
	runs, err := readRuns(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	reported := 0
	for _, r := range runs {
		if r.name == "host" || (filter != "" && !strings.Contains(r.name, filter)) {
			continue
		}
		hist := r.hists["server.req_ns"]
		if hist == nil {
			continue // not a gcserve run
		}
		reported++
		s := reduceLatency(r, hist)
		if jsonOut {
			if err := enc.Encode(s); err != nil {
				return err
			}
			continue
		}
		printLatency(s)
	}
	if reported == 0 {
		return fmt.Errorf("no gcserve runs (with server.req_ns histograms) matched (file has %d runs)", len(runs))
	}
	return nil
}

// latencySummary is the per-run reduction; the JSON shape is what
// BENCH_serve.json records.
type latencySummary struct {
	Run       string `json:"run"`
	Collector string `json:"collector"`

	Ops    int64 `json:"ops"`
	Issued int64 `json:"issued"`
	Failed int64 `json:"failed"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Churns int64 `json:"churns"`

	RunNs         int64   `json:"run_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  float64 `json:"max_ns"`

	Cycles      int64   `json:"cycles"`
	LostObjects int64   `json:"lost_objects"`
	Pauses      int     `json:"pauses"`
	MaxPauseNs  float64 `json:"max_pause_ns"`

	// MMU maps window ("10ms") to minimum mutator utilization in [0,1].
	MMU map[string]float64 `json:"mmu"`

	// PauseLatencyR is the Pearson correlation between each window's worst
	// pause and worst request latency; Windows is how many windows both
	// series cover. NaN — a constant or too-short series — is reported as 0
	// with Windows 0 so the summary stays JSON-encodable.
	PauseLatencyR float64 `json:"pause_latency_r"`
	Windows       int     `json:"windows"`
	WindowNs      int64   `json:"window_ns"`
}

func reduceLatency(r *runData, hist *stats.Histogram) latencySummary {
	s := latencySummary{
		Run:         r.name,
		Collector:   r.collector,
		Ops:         r.counters["server.ops"],
		Issued:      r.counters["server.issued"],
		Failed:      r.counters["server.failed"],
		Hits:        r.counters["server.hits"],
		Misses:      r.counters["server.misses"],
		Churns:      r.counters["server.churn"],
		RunNs:       r.counters["run.vtime_ns"],
		P50Ns:       hist.Quantile(stats.P50),
		P99Ns:       hist.Quantile(stats.P99),
		P999Ns:      hist.Quantile(stats.P999),
		MaxNs:       hist.Max(),
		Cycles:      r.counters["live.cycles"],
		LostObjects: r.counters["live.lost_objects"],
		MMU:         map[string]float64{},
		WindowNs:    r.counters["server.window_ns"],
	}
	if s.RunNs > 0 {
		s.ThroughputRPS = float64(s.Ops) / (float64(s.RunNs) / 1e9)
	}

	pauses := r.gauges["gc.pause_ns"]
	s.Pauses = len(pauses.v)
	for _, v := range pauses.v {
		if v > s.MaxPauseNs {
			s.MaxPauseNs = v
		}
	}
	if total := vtime.Duration(s.RunNs); total > 0 && len(pauses.v) > 0 {
		var iv []stats.Interval
		for i := range pauses.v {
			start := vtime.Time(pauses.at[i])
			iv = append(iv, stats.Interval{Start: start, End: start + vtime.Time(pauses.v[i])})
		}
		curve := stats.MMUCurve(iv, total, mmuWindows)
		for i, w := range mmuWindows {
			s.MMU[fmt.Sprintf("%.0fms", w.Milliseconds())] = curve[i]
		}
	}

	s.PauseLatencyR, s.Windows = pauseLatencyCorrelation(r, s.WindowNs)
	if math.IsNaN(s.PauseLatencyR) {
		s.PauseLatencyR, s.Windows = 0, 0
	}
	return s
}

// pauseLatencyCorrelation builds two aligned per-window series — worst GC
// pause and worst request latency — and returns their Pearson correlation.
// The latency side comes from the server.req_window_max_ns gauge (sampled at
// each window's end); pauses are bucketed into the same windows by start
// time. Windows neither series touched stay 0 on both sides and are skipped.
func pauseLatencyCorrelation(r *runData, windowNs int64) (float64, int) {
	if windowNs <= 0 {
		return math.NaN(), 0
	}
	lat := r.gauges["server.req_window_max_ns"]
	pauses := r.gauges["gc.pause_ns"]
	n := 0
	idxOf := func(at int64) int { return int(at / windowNs) }
	for _, at := range lat.at {
		// Latency samples are stamped at the window's end; shift into it.
		if i := idxOf(at - 1); i >= n {
			n = i + 1
		}
	}
	for _, at := range pauses.at {
		if i := idxOf(at); i >= n {
			n = i + 1
		}
	}
	if n == 0 {
		return math.NaN(), 0
	}
	latW := make([]float64, n)
	pauseW := make([]float64, n)
	for i, at := range lat.at {
		if j := idxOf(at - 1); j >= 0 && j < n && lat.v[i] > latW[j] {
			latW[j] = lat.v[i]
		}
	}
	for i, at := range pauses.at {
		if j := idxOf(at); j >= 0 && j < n && pauses.v[i] > pauseW[j] {
			pauseW[j] = pauses.v[i]
		}
	}
	// Keep only windows where requests actually ran (burst off-phases and
	// the post-run tail carry no latency signal to correlate).
	var xs, ys []float64
	for i := range latW {
		if latW[i] > 0 {
			xs = append(xs, pauseW[i])
			ys = append(ys, latW[i])
		}
	}
	return pearson(xs, ys), len(xs)
}

// pearson returns the sample correlation coefficient, NaN when either series
// is constant or shorter than two points.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if len(xs) < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

func printLatency(s latencySummary) {
	fmt.Printf("== %s (%s)\n", s.Run, s.Collector)
	hitRate := 0.0
	if s.Hits+s.Misses > 0 {
		hitRate = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	fmt.Printf("   requests: %d completed / %d issued (%d failed)  hit rate %.1f%%  churns %d\n",
		s.Ops, s.Issued, s.Failed, 100*hitRate, s.Churns)
	fmt.Printf("   throughput: %s req/s over %.2fs\n", fmtCount(s.ThroughputRPS), float64(s.RunNs)/1e9)
	fmt.Printf("   latency: p50 %s  p99 %s  p999 %s  max %s\n",
		fmtNsStat(s.P50Ns), fmtNsStat(s.P99Ns), fmtNsStat(s.P999Ns), fmtNsStat(s.MaxNs))
	fmt.Printf("   gc: %d cycles  %d pauses  max pause %s  lost objects %d\n",
		s.Cycles, s.Pauses, fmtNsStat(s.MaxPauseNs), s.LostObjects)
	if len(s.MMU) > 0 {
		parts := make([]string, len(mmuWindows))
		for i, w := range mmuWindows {
			k := fmt.Sprintf("%.0fms", w.Milliseconds())
			parts[i] = fmt.Sprintf("%s %.0f%%", k, 100*s.MMU[k])
		}
		fmt.Printf("   MMU: %s\n", strings.Join(parts, "  "))
	}
	if s.Windows > 0 {
		fmt.Printf("   pause↔latency: r=%+.2f over %d windows of %s\n",
			s.PauseLatencyR, s.Windows, fmtNsStat(float64(s.WindowNs)))
	}
	fmt.Println()
}

// fmtNsStat renders a nanosecond quantity human-readably.
func fmtNsStat(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtCount renders a rate with k/M suffixes.
func fmtCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"mcgc/internal/distill"
)

// pareto reduces a JSONL file of distill.Record lines (one per sweep cell,
// appended by gcserve/gcstress -distill-json) to the Pareto view: the
// frontier over (collector CPU overhead, real p99), lower better on both
// axes, with each dominated cell naming a dominator. With asJSON the
// frontier-annotated records are emitted as one JSON document — the
// BENCH_distill.json format.
func pareto(path string, asJSON bool) error {
	recs, err := distill.ReadRecords(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no distill records", path)
	}
	if agg := distill.MedianByName(recs); len(agg) < len(recs) {
		// To stderr: the -json document on stdout must stay parseable.
		fmt.Fprintf(os.Stderr, "pareto: %d records, %d cells (repeated cells collapsed to their median-CPU rep)\n",
			len(recs), len(agg))
		recs = agg
	}
	distill.MarkFrontier(recs)
	sort.SliceStable(recs, func(i, j int) bool {
		return recs[i].CPUOverhead < recs[j].CPUOverhead
	})

	if asJSON {
		out := struct {
			Axes    [2]string        `json:"axes"`
			Records []distill.Record `json:"records"`
		}{
			Axes:    [2]string{"cpu_overhead", "real.p99_ns"},
			Records: recs,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("%-24s %-8s %12s %10s %10s %10s  %s\n",
		"name", "policy", "cpu overhd", "p99", "gc share", "tput loss", "verdict")
	frontier := 0
	for _, r := range recs {
		verdict := "FRONTIER"
		switch {
		case r.BaselineContaminated:
			verdict = "contaminated baseline (excluded)"
		case r.DominatedBy != "":
			verdict = "dominated by " + r.DominatedBy
		default:
			frontier++
		}
		fmt.Printf("%-24s %-8s %11.1f%% %10s %9.1f%% %9.1f%%  %s\n",
			r.Name, r.Policy,
			100*r.CPUOverhead,
			time.Duration(r.Real.P99Ns).Round(time.Microsecond),
			100*r.GCCPUShare, 100*r.ThroughputLoss, verdict)
	}
	fmt.Printf("frontier: %d of %d cells\n", frontier, len(recs))
	return nil
}

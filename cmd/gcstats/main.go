// Command gcstats reduces the telemetry files gcbench writes. Each view is
// a subcommand:
//
//	gcbench -exp fig1 -metrics m.jsonl -trace t.json
//	gcstats metrics -metrics m.jsonl           # pause percentiles, MMU, K trajectory per run
//	gcstats metrics -metrics m.jsonl -run wh=8 # only runs whose name contains "wh=8"
//	gcstats balance -metrics m.jsonl           # per-tracer load-balance view (Section 6.3)
//	gcstats balance -metrics m.jsonl -json     # same, one JSON object per run
//	gcstats latency -metrics serve.jsonl       # gcserve view: throughput, request-latency tail, pause correlation
//	gcstats degradation -metrics serve.jsonl   # overload view: ladder time-in-state, stalls, emergency cycles, sheds
//	gcstats pareto -distill cells.jsonl        # distilled-cost Pareto view: collector CPU overhead vs p99 per policy
//	gcstats check-hoard -metrics m.jsonl       # clean vs pool.hoard runs must separate
//	gcstats check -trace t.json                # validate the Chrome trace (CI smoke)
//
// The pre-subcommand spellings (gcstats -metrics m.jsonl -balance, ...)
// still parse; they print a one-line migration hint to stderr, the same
// deprecated-alias convention the pacing flag vocabulary uses.
//
// The metrics report is computed entirely from the JSONL stream: pause
// percentiles from the gc.pause_ns gauge, MMU from the same samples plus
// the run.vtime_ns counter, and the tracing-rate trajectory from the
// gc.pacing.k gauge. The balance view reduces the trace.worker.* counters
// to skew, Gini, idle fraction, steal-hit rate and termination-latency
// percentiles; check-hoard gates CI on a hoard fault measurably moving
// those numbers. The pareto view reads the JSONL of distill.Record lines a
// -distill sweep appends, computes the Pareto frontier over (CPU overhead,
// p99) and prints the dominance relation; -json emits the annotated records
// for BENCH_distill.json. The check subcommand parses the trace_event file
// the way a viewer would and fails on structural problems (non-positive
// span durations, time going backwards within a track, missing or
// conflicting track names, tracer lanes shared between workers).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// line is the union of the JSONL record types the metrics sink emits.
type line struct {
	Type string `json:"type"`
	Meta *struct {
		Scale string `json:"scale"`
		J     int    `json:"j"`
	} `json:"meta,omitempty"`
	// "run" is an object on run lines and a plain run-name string on metric
	// lines; kept raw here and decoded per record type.
	Run json.RawMessage `json:"run,omitempty"`

	Name    string    `json:"name"`
	Value   int64     `json:"value"`
	AtNs    []int64   `json:"at_ns"`
	V       []float64 `json:"v"`
	Bounds  []float64 `json:"bounds"`
	Counts  []int64   `json:"counts"`
	N       int64     `json:"n"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Dropped int64     `json:"dropped"`
}

// runData is everything gcstats keeps per run.
type runData struct {
	name      string
	collector string
	counters  map[string]int64
	gauges    map[string]struct {
		at []int64
		v  []float64
	}
	hists map[string]*stats.Histogram
}

var mmuWindows = []vtime.Duration{
	1 * vtime.Millisecond,
	10 * vtime.Millisecond,
	50 * vtime.Millisecond,
	200 * vtime.Millisecond,
}

// subcommands maps each view to its runner. Every runner binds its own flag
// set (so "gcstats latency -h" lists only latency's flags) and returns an
// error for a failed reduction; flag errors exit(2) via flag.ExitOnError.
var subcommands = map[string]struct {
	summary string
	run     func(args []string) error
}{
	"metrics": {"pause percentiles, MMU and K trajectory per run", func(args []string) error {
		fs := flag.NewFlagSet("gcstats metrics", flag.ExitOnError)
		metrics := fs.String("metrics", "", "JSONL metrics file written by gcbench/gcstress/gcserve -metrics")
		run := fs.String("run", "", "only report runs whose name contains this substring")
		fs.Parse(args)
		if *metrics == "" {
			return usageErr("gcstats metrics needs -metrics FILE")
		}
		return report(*metrics, *run)
	}},
	"balance": {"per-tracer load-balance view (skew, Gini, idle, steals)", func(args []string) error {
		fs := flag.NewFlagSet("gcstats balance", flag.ExitOnError)
		metrics, run, asJSON := viewFlags(fs)
		fs.Parse(args)
		if *metrics == "" {
			return usageErr("gcstats balance needs -metrics FILE")
		}
		return balance(*metrics, *run, *asJSON)
	}},
	"latency": {"server-workload view: throughput, request-latency tail, pause correlation", func(args []string) error {
		fs := flag.NewFlagSet("gcstats latency", flag.ExitOnError)
		metrics, run, asJSON := viewFlags(fs)
		fs.Parse(args)
		if *metrics == "" {
			return usageErr("gcstats latency needs -metrics FILE")
		}
		return latency(*metrics, *run, *asJSON)
	}},
	"degradation": {"overload view: ladder time-in-state, stalls, emergency cycles, sheds", func(args []string) error {
		fs := flag.NewFlagSet("gcstats degradation", flag.ExitOnError)
		metrics, run, asJSON := viewFlags(fs)
		fs.Parse(args)
		if *metrics == "" {
			return usageErr("gcstats degradation needs -metrics FILE")
		}
		return degradation(*metrics, *run, *asJSON)
	}},
	"pareto": {"distilled-cost Pareto view: collector CPU overhead vs p99 per policy", func(args []string) error {
		fs := flag.NewFlagSet("gcstats pareto", flag.ExitOnError)
		in := fs.String("distill", "", "JSONL file of distill records appended by gcserve/gcstress -distill-json")
		asJSON := fs.Bool("json", false, "emit the frontier-annotated records as one JSON document (BENCH_distill.json format)")
		fs.Parse(args)
		if *in == "" {
			return usageErr("gcstats pareto needs -distill FILE")
		}
		return pareto(*in, *asJSON)
	}},
	"check": {"validate the Chrome trace file (CI smoke)", func(args []string) error {
		fs := flag.NewFlagSet("gcstats check", flag.ExitOnError)
		trace := fs.String("trace", "", "Chrome trace file written by -trace")
		fs.Parse(args)
		if *trace == "" {
			return usageErr("gcstats check needs -trace FILE")
		}
		if err := checkTrace(*trace); err != nil {
			return fmt.Errorf("trace check failed: %v", err)
		}
		return nil
	}},
	"check-hoard": {"require pool.hoard runs to worsen balance vs clean runs", func(args []string) error {
		fs := flag.NewFlagSet("gcstats check-hoard", flag.ExitOnError)
		metrics := fs.String("metrics", "", "JSONL metrics file with clean and pool.hoard runs")
		fs.Parse(args)
		if *metrics == "" {
			return usageErr("gcstats check-hoard needs -metrics FILE")
		}
		if err := checkHoard(*metrics); err != nil {
			return fmt.Errorf("hoard check failed: %v", err)
		}
		return nil
	}},
}

// viewFlags binds the three flags every per-run metrics view shares.
func viewFlags(fs *flag.FlagSet) (metrics, run *string, asJSON *bool) {
	metrics = fs.String("metrics", "", "JSONL metrics file written by -metrics")
	run = fs.String("run", "", "only report runs whose name contains this substring")
	asJSON = fs.Bool("json", false, "emit one JSON object per run instead of text")
	return
}

// usageError marks errors that should exit 2 (bad invocation) rather than 1
// (failed check or reduction).
type usageError string

func (e usageError) Error() string { return string(e) }

func usageErr(msg string) error { return usageError(msg) }

// subcommandOrder fixes the help listing (map iteration is random).
var subcommandOrder = []string{"metrics", "latency", "balance", "degradation", "pareto", "check", "check-hoard"}

func usage(w *os.File) {
	fmt.Fprintln(w, "usage: gcstats <subcommand> [flags]")
	fmt.Fprintln(w, "subcommands:")
	for _, name := range subcommandOrder {
		fmt.Fprintf(w, "  %-12s %s\n", name, subcommands[name].summary)
	}
	fmt.Fprintln(w, "run \"gcstats <subcommand> -h\" for that view's flags")
}

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		name, args := os.Args[1], os.Args[2:]
		if name == "help" {
			usage(os.Stdout)
			return
		}
		sub, ok := subcommands[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "gcstats: unknown subcommand %q\n", name)
			usage(os.Stderr)
			os.Exit(2)
		}
		if err := sub.run(args); err != nil {
			fmt.Fprintf(os.Stderr, "gcstats: %v\n", err)
			if _, isUsage := err.(usageError); isUsage {
				os.Exit(2)
			}
			os.Exit(1)
		}
		return
	}
	legacyMain()
}

// legacyMain parses the pre-subcommand flag spellings (-balance, -latency,
// -check, ...) and forwards to the same view runners, printing a migration
// hint per deprecated mode flag actually used — the same convention the
// pacing vocabulary's deprecated aliases follow (pacing.Flags.PrintHints).
func legacyMain() {
	var (
		metricsFlag    = flag.String("metrics", "", "JSONL metrics file written by gcbench -metrics")
		traceFlag      = flag.String("trace", "", "Chrome trace file written by gcbench -trace")
		checkFlag      = flag.Bool("check", false, "deprecated: use \"gcstats check -trace FILE\"")
		balanceFlag    = flag.Bool("balance", false, "deprecated: use \"gcstats balance -metrics FILE\"")
		latencyFlag    = flag.Bool("latency", false, "deprecated: use \"gcstats latency -metrics FILE\"")
		degradeFlag    = flag.Bool("degradation", false, "deprecated: use \"gcstats degradation -metrics FILE\"")
		jsonFlag       = flag.Bool("json", false, "with -balance, -latency or -degradation: emit one JSON object per run")
		checkHoardFlag = flag.Bool("check-hoard", false, "deprecated: use \"gcstats check-hoard -metrics FILE\"")
		runFlag        = flag.String("run", "", "only report runs whose name contains this substring")
	)
	flag.Usage = func() { usage(os.Stderr) }
	flag.Parse()

	hint := func(new string) {
		fmt.Fprintf(os.Stderr, "gcstats: flag spelling deprecated; use: gcstats %s\n", new)
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcstats: %v\n", err)
			os.Exit(1)
		}
	}
	switch {
	case *checkFlag:
		if *traceFlag == "" {
			fmt.Fprintln(os.Stderr, "gcstats: -check needs -trace FILE")
			os.Exit(2)
		}
		hint("check -trace FILE")
		if err := checkTrace(*traceFlag); err != nil {
			fail(fmt.Errorf("trace check failed: %v", err))
		}
	case *checkHoardFlag:
		if *metricsFlag == "" {
			fmt.Fprintln(os.Stderr, "gcstats: -check-hoard needs -metrics FILE")
			os.Exit(2)
		}
		hint("check-hoard -metrics FILE")
		if err := checkHoard(*metricsFlag); err != nil {
			fail(fmt.Errorf("hoard check failed: %v", err))
		}
	case *latencyFlag:
		if *metricsFlag == "" {
			fmt.Fprintln(os.Stderr, "gcstats: -latency needs -metrics FILE")
			os.Exit(2)
		}
		hint("latency -metrics FILE")
		fail(latency(*metricsFlag, *runFlag, *jsonFlag))
	case *degradeFlag:
		if *metricsFlag == "" {
			fmt.Fprintln(os.Stderr, "gcstats: -degradation needs -metrics FILE")
			os.Exit(2)
		}
		hint("degradation -metrics FILE")
		fail(degradation(*metricsFlag, *runFlag, *jsonFlag))
	case *balanceFlag:
		if *metricsFlag == "" {
			fmt.Fprintln(os.Stderr, "gcstats: -balance needs -metrics FILE")
			os.Exit(2)
		}
		hint("balance -metrics FILE")
		fail(balance(*metricsFlag, *runFlag, *jsonFlag))
	case *metricsFlag != "":
		hint("metrics -metrics FILE")
		fail(report(*metricsFlag, *runFlag))
	default:
		usage(os.Stderr)
		os.Exit(2)
	}
}

// readRuns parses the JSONL stream into per-run metric maps, preserving the
// file's (sorted) run order.
func readRuns(path string) ([]*runData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var runs []*runData
	byName := map[string]*runData{}
	current := func(run string) *runData {
		r := byName[run]
		if r == nil {
			r = &runData{
				name:     run,
				counters: map[string]int64{},
				gauges: map[string]struct {
					at []int64
					v  []float64
				}{},
				hists: map[string]*stats.Histogram{},
			}
			byName[run] = r
			runs = append(runs, r)
		}
		return r
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for ln := 1; sc.Scan(); ln++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, ln, err)
		}
		switch l.Type {
		case "suite":
			// informational only
		case "run":
			var meta struct {
				Name      string `json:"name"`
				Collector string `json:"collector"`
			}
			if err := json.Unmarshal(l.Run, &meta); err != nil {
				return nil, fmt.Errorf("%s:%d: run meta: %v", path, ln, err)
			}
			current(meta.Name).collector = meta.Collector
		case "counter", "gauge", "hist":
			var run string
			if err := json.Unmarshal(l.Run, &run); err != nil {
				return nil, fmt.Errorf("%s:%d: run key: %v", path, ln, err)
			}
			r := current(run)
			switch l.Type {
			case "counter":
				r.counters[l.Name] = l.Value
			case "gauge":
				r.gauges[l.Name] = struct {
					at []int64
					v  []float64
				}{l.AtNs, l.V}
			case "hist":
				r.hists[l.Name] = stats.RestoreHistogram(l.Bounds, l.Counts, l.Sum, l.Min, l.Max)
			}
		default:
			return nil, fmt.Errorf("%s:%d: unknown record type %q", path, ln, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}

// report prints the per-run reduction.
func report(path, filter string) error {
	runs, err := readRuns(path)
	if err != nil {
		return err
	}
	reported := 0
	for _, r := range runs {
		if r.name == "host" || (filter != "" && !strings.Contains(r.name, filter)) {
			continue
		}
		reported++
		fmt.Printf("== %s (%s)\n", r.name, r.collector)

		pauses := r.gauges["gc.pause_ns"]
		if len(pauses.v) == 0 {
			fmt.Printf("   no collections recorded\n")
		} else {
			qs := stats.QuantilesF(pauses.v, 0.5, 0.95, 1.0)
			fmt.Printf("   pauses: %d  p50 %.2f ms  p95 %.2f ms  max %.2f ms\n",
				len(pauses.v), qs[0]/1e6, qs[1]/1e6, qs[2]/1e6)
		}

		if total := vtime.Duration(r.counters["run.vtime_ns"]); total > 0 && len(pauses.v) > 0 {
			var iv []stats.Interval
			for i := range pauses.v {
				start := vtime.Time(pauses.at[i])
				iv = append(iv, stats.Interval{Start: start, End: start + vtime.Time(pauses.v[i])})
			}
			curve := stats.MMUCurve(iv, total, mmuWindows)
			parts := make([]string, len(mmuWindows))
			for i, w := range mmuWindows {
				parts[i] = fmt.Sprintf("%.0fms %.0f%%", w.Milliseconds(), 100*curve[i])
			}
			fmt.Printf("   MMU: %s\n", strings.Join(parts, "  "))
		}

		if lh, st, sp, ss, cf := r.counters["pool.local_hits"], r.counters["pool.steals"],
			r.counters["pool.spills"], r.counters["arena.shard_steals"],
			r.counters["card.buffer_flushes"]; lh+st+sp+ss+cf > 0 {
			fmt.Printf("   sharding: local hits %d  steals %d  spills %d  shard steals %d  card flushes %d\n",
				lh, st, sp, ss, cf)
		}

		if faults := faultCounters(r.counters); len(faults) > 0 {
			fmt.Printf("   faults:")
			for _, f := range faults {
				fmt.Printf("  %s %d/%d", f.site, f.fires, f.hits)
			}
			fmt.Println()
			if r.counters["live.wedged"] > 0 {
				fmt.Printf("   WEDGED: run aborted by the termination watchdog\n")
			}
		}

		if k := r.gauges["gc.pacing.k"]; len(k.v) > 0 {
			min, max := k.v[0], k.v[0]
			var sum float64
			for _, v := range k.v {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
				sum += v
			}
			fmt.Printf("   K: %d increments  first %.2f  last %.2f  mean %.2f  range [%.2f, %.2f]\n",
				len(k.v), k.v[0], k.v[len(k.v)-1], sum/float64(len(k.v)), min, max)
			if kicks := r.counters["gc.kickoffs"]; kicks > 0 {
				fmt.Printf("   kickoffs: %d  paced increments: %d  trace words: mutator %d  bg %d  dedicated %d\n",
					kicks, r.counters["gc.increments"],
					r.counters["trace.mutator_words"], r.counters["trace.bg_words"], r.counters["trace.dedicated_words"])
			}
		}
		fmt.Println()
	}
	if reported == 0 {
		return fmt.Errorf("no runs matched (file has %d runs)", len(runs))
	}
	return nil
}

// faultCounter is one fault site's fires/hits pair pulled back out of the
// fault.<site>.{fires,hits} counters a chaos run emits.
type faultCounter struct {
	site        string
	fires, hits int64
}

// faultCounters extracts and sorts the fault-injection counters of one run.
// Site names contain dots ("pool.exhaust"), so the metric kind is whatever
// follows the last dot.
func faultCounters(counters map[string]int64) []faultCounter {
	bySite := map[string]*faultCounter{}
	for name, v := range counters {
		rest, ok := strings.CutPrefix(name, "fault.")
		if !ok {
			continue
		}
		i := strings.LastIndexByte(rest, '.')
		if i < 0 {
			continue
		}
		site, kind := rest[:i], rest[i+1:]
		fc := bySite[site]
		if fc == nil {
			fc = &faultCounter{site: site}
			bySite[site] = fc
		}
		switch kind {
		case "hits":
			fc.hits = v
		case "fires":
			fc.fires = v
		}
	}
	out := make([]faultCounter, 0, len(bySite))
	for _, fc := range bySite {
		out = append(out, *fc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].site < out[j].site })
	return out
}

// traceFile mirrors the subset of the trace_event schema -check inspects.
type traceFile struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Pid  int64          `json:"pid"`
		Tid  int64          `json:"tid"`
		Name string         `json:"name"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
}

// span is one complete ("X") event during -check validation.
type span struct {
	name     string
	ts, dur  float64
	fileLine int // index in traceEvents, for error messages
}

// checkTrace validates the trace the way a viewer would load it. Spans may
// appear in any file order (writers that record a span at completion emit an
// enclosing span after its children), so each track's spans are sorted by
// timestamp and then required to nest properly: two spans on one track must
// be disjoint or one must contain the other — partial overlap is the
// structural error a viewer renders as garbage. Per-tracer lanes get extra
// checks: a (pid,tid) pair must carry exactly one thread name, and the
// "worker" argument of tracer.cycle spans must be one-to-one with its track —
// two workers sharing a lane (or one worker smeared over two lanes) is how a
// track-assignment bug renders as interleaved garbage.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	spanNames := map[string]bool{}
	named := map[[2]int64]string{}         // (pid,tid) -> thread_name metadata
	workerOfTrack := map[[2]int64]string{} // tracer.cycle "worker" arg per lane
	trackOfWorker := map[string][2]int64{}
	tracks := map[[2]int64][]span{}
	var spans, instants, counters int
	for i, e := range tf.TraceEvents {
		key := [2]int64{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				name, _ := e.Args["name"].(string)
				if prev, ok := named[key]; ok && prev != name {
					return fmt.Errorf("event %d: track %v renamed from %q to %q", i, key, prev, name)
				}
				named[key] = name
			}
		case "X":
			spans++
			spanNames[e.Name] = true
			if e.Dur < 0 {
				return fmt.Errorf("event %d (%q): negative span duration %g", i, e.Name, e.Dur)
			}
			tracks[key] = append(tracks[key], span{name: e.Name, ts: e.Ts, dur: e.Dur, fileLine: i})
			if e.Name == "tracer.cycle" {
				w := fmt.Sprint(e.Args["worker"])
				if prev, ok := workerOfTrack[key]; ok && prev != w {
					return fmt.Errorf("event %d: track %v carries tracer.cycle spans for workers %s and %s",
						i, key, prev, w)
				}
				workerOfTrack[key] = w
				if prev, ok := trackOfWorker[w]; ok && prev != key {
					return fmt.Errorf("event %d: worker %s has tracer.cycle spans on tracks %v and %v",
						i, w, prev, key)
				}
				trackOfWorker[w] = key
			}
		case "i":
			instants++
		case "C":
			counters++
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
	}
	for key, tr := range tracks {
		if _, ok := named[key]; !ok {
			return fmt.Errorf("track %v has events but no thread_name metadata", key)
		}
		if err := checkNesting(key, named[key], tr); err != nil {
			return err
		}
	}
	if len(spanNames) < 5 {
		names := make([]string, 0, len(spanNames))
		for n := range spanNames {
			names = append(names, n)
		}
		sort.Strings(names)
		return fmt.Errorf("only %d distinct span types (%s); want >= 5", len(spanNames), strings.Join(names, ", "))
	}
	fmt.Printf("trace ok: %d spans (%d types), %d instants, %d counter samples, %d tracks\n",
		spans, len(spanNames), instants, counters, len(tracks))
	return nil
}

// checkNesting verifies that one track's spans form a forest: sorted by
// start (ties: longest first, so a parent precedes the children sharing its
// start), every span must begin at or after the enclosing span's start and
// end at or before its end.
func checkNesting(key [2]int64, trackName string, tr []span) error {
	sort.Slice(tr, func(i, j int) bool {
		if tr[i].ts != tr[j].ts {
			return tr[i].ts < tr[j].ts
		}
		return tr[i].dur > tr[j].dur
	})
	// Timestamps are nanoseconds divided down to float microseconds, so
	// boundaries that were exactly equal in the writer can differ by float
	// rounding; tolerate up to the 1ns quantum.
	const eps = 1e-3
	var stack []span
	for _, s := range tr {
		for len(stack) > 0 && stack[len(stack)-1].ts+stack[len(stack)-1].dur <= s.ts+eps {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			if top := stack[len(stack)-1]; s.ts+s.dur > top.ts+top.dur+eps {
				return fmt.Errorf("track %v (%q): span %q [%g,%g] (event %d) partially overlaps %q [%g,%g] (event %d)",
					key, trackName, s.name, s.ts, s.ts+s.dur, s.fileLine,
					top.name, top.ts, top.ts+top.dur, top.fileLine)
			}
		}
		stack = append(stack, s)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mcgc/internal/stats"
)

// degradation reduces live-engine runs to the overload-survival view: how
// much of the run each rung of the graceful-degradation ladder was active
// (ok / backpressure / emergency), how long mutators stalled in allocation
// backpressure, how often the engine escalated to an emergency collection,
// and — for gcserve runs — what the server's admission control shed or
// evicted. This is the view BENCH_overload.json records: the ladder's worth
// shows up as "same offered load, zero lost objects, bounded stalls" against
// a ladder-off run that wedges or fails allocations unboundedly.
func degradation(path, filter string, jsonOut bool) error {
	runs, err := readRuns(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	reported := 0
	for _, r := range runs {
		if r.name == "host" || (filter != "" && !strings.Contains(r.name, filter)) {
			continue
		}
		if _, live := r.counters["live.cycles"]; !live {
			continue // not a live-engine run: no ladder to report
		}
		reported++
		s := reduceDegradation(r)
		if jsonOut {
			if err := enc.Encode(s); err != nil {
				return err
			}
			continue
		}
		printDegradation(s)
	}
	if reported == 0 {
		return fmt.Errorf("no live-engine runs matched (file has %d runs)", len(runs))
	}
	return nil
}

// degradationSummary is the per-run reduction; the JSON shape is what
// BENCH_overload.json records.
type degradationSummary struct {
	Run       string `json:"run"`
	Collector string `json:"collector"`

	LadderOn bool  `json:"ladder_on"`
	RunNs    int64 `json:"run_ns"`

	// Time-in-state fractions of the run, from the degradation tracker.
	OKFrac           float64 `json:"ok_frac"`
	BackpressureFrac float64 `json:"backpressure_frac"`
	EmergencyFrac    float64 `json:"emergency_frac"`
	Transitions      int     `json:"transitions"`

	// Rung 1: allocation backpressure.
	BackpressureWaits    int64   `json:"backpressure_waits"`
	BackpressureTimeouts int64   `json:"backpressure_timeouts"`
	BackpressureNs       int64   `json:"backpressure_ns"`
	StallP50Ns           float64 `json:"stall_p50_ns"`
	StallP99Ns           float64 `json:"stall_p99_ns"`
	StallMaxNs           float64 `json:"stall_max_ns"`

	// Rung 2: emergency collections.
	EmergencyCycles int64 `json:"emergency_cycles"`
	Cycles          int64 `json:"cycles"`

	// Rung 3: server admission control (zero for non-gcserve runs).
	Shed    int64 `json:"shed"`
	Evicted int64 `json:"evicted"`
	Retries int64 `json:"retries"`

	// Outcome: did the run survive the overload?
	AllocFailed int64 `json:"alloc_failed"`
	LostObjects int64 `json:"lost_objects"`
	Wedged      bool  `json:"wedged"`
}

func reduceDegradation(r *runData) degradationSummary {
	s := degradationSummary{
		Run:                  r.name,
		Collector:            r.collector,
		LadderOn:             r.counters["gc.ladder_enabled"] != 0,
		RunNs:                r.counters["run.vtime_ns"],
		BackpressureWaits:    r.counters["gc.backpressure_waits"],
		BackpressureTimeouts: r.counters["gc.backpressure_timeouts"],
		BackpressureNs:       r.counters["gc.backpressure_ns"],
		EmergencyCycles:      r.counters["gc.emergency_cycles"],
		Cycles:               r.counters["live.cycles"],
		Shed:                 r.counters["server.shed"],
		Evicted:              r.counters["server.evicted"],
		Retries:              r.counters["server.retries"],
		AllocFailed:          r.counters["live.alloc_failed"],
		LostObjects:          r.counters["live.lost_objects"],
		Wedged:               r.counters["live.wedged"] != 0,
	}
	if total := s.RunNs; total > 0 {
		s.OKFrac = float64(r.counters["gc.deg_ok_ns"]) / float64(total)
		s.BackpressureFrac = float64(r.counters["gc.deg_backpressure_ns"]) / float64(total)
		s.EmergencyFrac = float64(r.counters["gc.deg_emergency_ns"]) / float64(total)
	}
	// The state gauge carries one sample per transition plus the initial ok.
	if g := r.gauges["gc.degradation_state"]; len(g.v) > 1 {
		s.Transitions = len(g.v) - 1
	}
	if h := r.hists["gc.backpressure_stall_ns"]; h != nil && h.N() > 0 {
		s.StallP50Ns = h.Quantile(stats.P50)
		s.StallP99Ns = h.Quantile(stats.P99)
		s.StallMaxNs = h.Max()
	}
	return s
}

func printDegradation(s degradationSummary) {
	ladder := "off"
	if s.LadderOn {
		ladder = "on"
	}
	fmt.Printf("== %s (%s, ladder %s)\n", s.Run, s.Collector, ladder)
	fmt.Printf("   state: ok %.1f%%  backpressure %.1f%%  emergency %.1f%%  (%d transitions over %.2fs)\n",
		100*s.OKFrac, 100*s.BackpressureFrac, 100*s.EmergencyFrac,
		s.Transitions, float64(s.RunNs)/1e9)
	if s.BackpressureWaits > 0 {
		fmt.Printf("   backpressure: %d waits (%d timed out)  total %s  stall p50 %s  p99 %s  max %s\n",
			s.BackpressureWaits, s.BackpressureTimeouts, fmtNsStat(float64(s.BackpressureNs)),
			fmtNsStat(s.StallP50Ns), fmtNsStat(s.StallP99Ns), fmtNsStat(s.StallMaxNs))
	}
	fmt.Printf("   collections: %d cycles, %d emergency\n", s.Cycles, s.EmergencyCycles)
	if s.Shed+s.Evicted+s.Retries > 0 {
		fmt.Printf("   admission: shed %d  evicted %d  retries %d\n", s.Shed, s.Evicted, s.Retries)
	}
	verdict := "survived"
	if s.Wedged {
		verdict = "WEDGED"
	} else if s.LostObjects > 0 {
		verdict = fmt.Sprintf("LOST %d OBJECTS", s.LostObjects)
	}
	fmt.Printf("   outcome: %s  alloc failures %d  lost objects %d\n\n",
		verdict, s.AllocFailed, s.LostObjects)
}

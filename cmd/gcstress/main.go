// Command gcstress runs the live engine: the mostly-concurrent collector on
// a real shared heap mutated by real goroutines (internal/live), as opposed
// to cmd/gcsim's simulated SMP. Build and run it with -race to put the
// packet pool, card table and publication protocols under the race detector;
// the built-in STW oracle independently verifies that no cycle loses a live
// object.
//
// The -chaos flag arms the deterministic fault-injection layer
// (internal/faultinject): a spec like "pool.exhaust=1/4,live.tracerstall=3:2ms"
// forces the collector's rare paths at a chosen, seeded rate. Per-fault
// trigger counts are printed after the run and land in the metrics JSONL as
// fault.<site>.{hits,fires} counters. "-chaos list" prints every site.
//
// Examples:
//
//	gcstress -mutators 4 -tracers 2 -duration 5s
//	gcstress -pacing -kickoff-headroom 4096 -duration 5s -require-paced
//	gcstress -shape pointer -packets 10 -packetcap 8 -duration 10s
//	gcstress -duration 2s -metrics stress.jsonl -trace stress.trace.json
//	gcstress -chaos "pool.exhaust=1/4" -chaos-seed 7 -require-faults
//	gcstress -chaos "live.wedge=on" -wedge-timeout 500ms   # exits 2, no hang
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mcgc/internal/distill"
	"mcgc/internal/faultinject"
	"mcgc/internal/live"
	"mcgc/internal/runmeta"
	"mcgc/internal/telemetry"
)

func main() {
	var (
		mutators   = flag.Int("mutators", 4, "mutator goroutines")
		tracers    = flag.Int("tracers", 2, "dedicated tracer goroutines")
		bg         = flag.Int("bg", 1, "low-priority background tracer goroutines")
		duration   = flag.Duration("duration", 2*time.Second, "run length")
		seed       = flag.Int64("seed", 1, "workload seed")
		objects    = flag.Int("objects", 1<<15, "arena size in objects")
		refs       = flag.Int("refs", 4, "reference slots per object")
		roots      = flag.Int("roots", 32, "root slots per mutator")
		packets    = flag.Int("packets", 64, "work packets in the pool (small values force overflow)")
		packetCap  = flag.Int("packetcap", 32, "entries per packet")
		allocBatch = flag.Int("allocbatch", 16, "allocation-bit publication batch size")
		cardPasses = flag.Int("cardpasses", 2, "concurrent card cleaning passes per cycle")
		shape      = flag.String("shape", "mixed", "workload shape: mixed, churn or pointer")
		metricsOut = flag.String("metrics", "", "write metrics JSONL to this file")
		traceOut   = flag.String("trace", "", "write Chrome trace_event JSON to this file")

		chaos     = flag.String("chaos", "", `fault-injection spec ("list" prints the sites)`)
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed (independent of -seed)")
		wedgeTO   = flag.Duration("wedge-timeout", 5*time.Second, "abort a cycle making no tracing progress for this long")
		timeout   = flag.Duration("timeout", 0, "kill the whole run after this long with a goroutine dump (0 disables)")
		reqFaults = flag.Bool("require-faults", false, "exit 1 unless every spec-named fault point fired at least once")

		reqPaced = flag.Bool("require-paced", false, "exit 1 unless pacing did real work: >=1 paced increment and zero allocation failures")
	)
	// The sharding knobs, -name, -pacing and the pacing vocabulary of
	// internal/pacing are bound through the helper gcserve shares, so the
	// same -localcache/-k0 spellings mean the same thing in both CLIs. The
	// pacing word unit for the live engine is one object.
	common := live.BindCommonFlags(flag.CommandLine, false)
	flag.Parse()
	common.PrintHints(os.Stderr, "gcstress")

	if *chaos == "list" {
		for _, line := range faultinject.Sites() {
			fmt.Println(line)
		}
		fmt.Println("jitter               schedule perturbator applied at every site's every hit")
		return
	}
	plan, err := faultinject.Parse(*chaos, *chaosSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcstress: %v\n", err)
		os.Exit(1)
	}

	cfg := live.Config{
		Objects:         *objects,
		RefsPerObject:   *refs,
		RootsPerMutator: *roots,
		Mutators:        *mutators,
		Tracers:         *tracers,
		BgTracers:       *bg,
		Packets:         *packets,
		PacketCap:       *packetCap,
		AllocBatch:      *allocBatch,
		CardPasses:      *cardPasses,
		Duration:        *duration,
		Seed:            *seed,
		Shape:           *shape,
	}
	cfg.FaultOptions = live.FaultOptions{Faults: plan, WedgeTimeout: *wedgeTO}
	common.Apply(&cfg)

	// Telemetry rides the same sinks as the simulator suite so gcstats can
	// read both; the live engine's time axis is wall-clock nanoseconds.
	col := telemetry.NewCollector(*traceOut != "")
	name := common.RunName(fmt.Sprintf("%s/m=%d/t=%d", *shape, *mutators, *tracers+*bg))
	run := col.StartRun(runmeta.Run{
		Exp:     "gcstress",
		Name:    name,
		Seed:    *seed,
		Workers: *mutators + *tracers + *bg,
	})
	cfg.Reg = run.Registry
	cfg.TL = run.Timeline

	suite := runmeta.Suite{
		Scale:      "live",
		J:          1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}

	// The hard watchdog backstops everything else: if the engine's own wedge
	// detection is itself broken, the process still dies with a stack dump
	// instead of hanging the harness.
	if *timeout > 0 {
		go func() {
			time.Sleep(*timeout)
			fmt.Fprintf(os.Stderr, "gcstress: run exceeded -timeout %v; goroutine dump follows\n", *timeout)
			buf := make([]byte, 1<<20)
			os.Stderr.Write(buf[:runtime.Stack(buf, true)])
			os.Exit(2)
		}()
	}

	runArm := func(c live.Config) (live.Report, distill.Arm) {
		eng := live.NewEngine(c) // construction (arena zeroing) outside the timed window
		cpu0, wall0 := distill.CPUClock(), time.Now()
		r := eng.Run()
		arm := distill.Arm{
			WallNs:      int64(time.Since(wall0)),
			CPUNs:       int64(distill.CPUClock() - cpu0),
			Completed:   r.MutatorOps,
			Failed:      r.AllocFailed,
			Cycles:      r.Cycles,
			STWNs:       int64(r.STWTotal),
			AllocFailed: r.AllocFailed,
		}
		arm.FillThroughput()
		return r, arm
	}

	rep, realArm := runArm(cfg)
	fmt.Println(rep)

	var distRec *distill.Record
	if common.Distill {
		// Same distillation shape as gcserve, without latency quantiles:
		// the workload is synthetic churn, so the unit of progress is a
		// mutator op and the deltas are throughput and CPU only.
		base := cfg
		base.Objects = cfg.Objects + int(rep.ObjectsAllocated)*common.DistillMult
		base.PacingOptions = live.PacingOptions{DisableCollection: true}
		base.LadderOptions = live.LadderOptions{}
		base.FaultOptions = live.FaultOptions{}
		base.ObserveOptions = live.ObserveOptions{}
		fmt.Printf("distill: re-running with collection disabled (arena %d objects)\n", base.Objects)
		_, baseArm := runArm(base)
		rec := distill.NewRecord(name, rep.PacingPolicy, realArm, baseArm)
		distRec = &rec
		fmt.Println(rec)
		if common.DistillJSON != "" {
			if err := rec.AppendJSON(common.DistillJSON); err != nil {
				fmt.Fprintf(os.Stderr, "gcstress: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metricsOut != "" {
		writeSink(*metricsOut, func(f *os.File) error { return col.WriteJSONL(f, suite) })
	}
	if *traceOut != "" {
		writeSink(*traceOut, func(f *os.File) error { return col.WriteTrace(f, suite) })
	}

	// One funnel for every failure path, shared with gcserve: the engine
	// verdict maps onto live.ExitOK/ExitInvariant/ExitWedge, -require-*
	// assertions raise ExitInvariant, and any nonzero exit prints the
	// one-line repro command so the failure reruns from the log alone.
	code := live.ReportExit(&rep)
	raise := func(c int) {
		if c > code {
			code = c
		}
	}
	if rep.Wedged {
		fmt.Fprintf(os.Stderr, "gcstress: %s\n", rep.WedgeDiagnosis)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "gcstress: oracle: %s\n", v)
	}
	if rep.LostObjects > 0 {
		fmt.Fprintf(os.Stderr, "gcstress: oracle lost %d live objects\n", rep.LostObjects)
	}
	if *reqPaced {
		if rep.PacedIncrements == 0 {
			fmt.Fprintln(os.Stderr, "gcstress: -require-paced: no paced increments (is -pacing on?)")
			raise(live.ExitInvariant)
		}
		if rep.AllocFailed > 0 {
			fmt.Fprintf(os.Stderr, "gcstress: -require-paced: %d allocation failures — pacing did not keep tracing ahead of allocation\n", rep.AllocFailed)
			raise(live.ExitInvariant)
		}
	}
	if *reqFaults {
		for _, p := range rep.Faults {
			if p.Explicit && p.Fires == 0 {
				fmt.Fprintf(os.Stderr, "gcstress: fault point %s never fired (%d hits)\n", p.Name, p.Hits)
				raise(live.ExitInvariant)
			}
		}
	}
	if distRec != nil && distRec.BaselineContaminated {
		fmt.Fprintln(os.Stderr, "gcstress: distill baseline contaminated (collected or exhausted); raise -distill-mult")
		raise(live.ExitInvariant)
	}
	if code != live.ExitOK {
		fmt.Fprintln(os.Stderr, live.ReproLine("gcstress", *seed, plan,
			common.ReproFlags(), fmt.Sprintf("-shape %s", *shape)))
		os.Exit(code)
	}
}

func writeSink(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcstress: %v\n", err)
		os.Exit(1)
	}
}

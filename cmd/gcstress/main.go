// Command gcstress runs the live engine: the mostly-concurrent collector on
// a real shared heap mutated by real goroutines (internal/live), as opposed
// to cmd/gcsim's simulated SMP. Build and run it with -race to put the
// packet pool, card table and publication protocols under the race detector;
// the built-in STW oracle independently verifies that no cycle loses a live
// object.
//
// Examples:
//
//	gcstress -mutators 4 -tracers 2 -duration 5s
//	gcstress -shape pointer -packets 10 -packetcap 8 -duration 10s
//	gcstress -duration 2s -metrics stress.jsonl -trace stress.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mcgc/internal/live"
	"mcgc/internal/runmeta"
	"mcgc/internal/telemetry"
)

func main() {
	var (
		mutators   = flag.Int("mutators", 4, "mutator goroutines")
		tracers    = flag.Int("tracers", 2, "dedicated tracer goroutines")
		bg         = flag.Int("bg", 1, "low-priority background tracer goroutines")
		duration   = flag.Duration("duration", 2*time.Second, "run length")
		seed       = flag.Int64("seed", 1, "workload seed")
		objects    = flag.Int("objects", 1<<15, "arena size in objects")
		refs       = flag.Int("refs", 4, "reference slots per object")
		roots      = flag.Int("roots", 32, "root slots per mutator")
		packets    = flag.Int("packets", 64, "work packets in the pool (small values force overflow)")
		packetCap  = flag.Int("packetcap", 32, "entries per packet")
		allocBatch = flag.Int("allocbatch", 16, "allocation-bit publication batch size")
		cardPasses = flag.Int("cardpasses", 2, "concurrent card cleaning passes per cycle")
		shape      = flag.String("shape", "mixed", "workload shape: mixed, churn or pointer")
		metricsOut = flag.String("metrics", "", "write metrics JSONL to this file")
		traceOut   = flag.String("trace", "", "write Chrome trace_event JSON to this file")
	)
	flag.Parse()

	cfg := live.Config{
		Objects:         *objects,
		RefsPerObject:   *refs,
		RootsPerMutator: *roots,
		Mutators:        *mutators,
		Tracers:         *tracers,
		BgTracers:       *bg,
		Packets:         *packets,
		PacketCap:       *packetCap,
		AllocBatch:      *allocBatch,
		CardPasses:      *cardPasses,
		Duration:        *duration,
		Seed:            *seed,
		Shape:           *shape,
	}

	// Telemetry rides the same sinks as the simulator suite so gcstats can
	// read both; the live engine's time axis is wall-clock nanoseconds.
	col := telemetry.NewCollector(*traceOut != "")
	run := col.StartRun(runmeta.Run{
		Exp:     "gcstress",
		Name:    fmt.Sprintf("%s/m=%d/t=%d", *shape, *mutators, *tracers+*bg),
		Seed:    *seed,
		Workers: *mutators + *tracers + *bg,
	})
	cfg.Reg = run.Registry
	cfg.TL = run.Timeline

	suite := runmeta.Suite{
		Scale:      "live",
		J:          1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}

	rep := live.NewEngine(cfg).Run()
	fmt.Println(rep)

	if *metricsOut != "" {
		writeSink(*metricsOut, func(f *os.File) error { return col.WriteJSONL(f, suite) })
	}
	if *traceOut != "" {
		writeSink(*traceOut, func(f *os.File) error { return col.WriteTrace(f, suite) })
	}

	if rep.LostObjects > 0 || len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "gcstress: oracle: %s\n", v)
		}
		os.Exit(1)
	}
}

func writeSink(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcstress: %v\n", err)
		os.Exit(1)
	}
}

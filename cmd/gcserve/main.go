// Command gcserve drives the live collector with a server-shaped workload:
// a sharded in-memory KV/session store whose values live in the collected
// arena, hammered by a closed loop of concurrent clients with Zipfian key
// skew, a configurable read/write mix, phase-locked request bursts and
// connection churn (internal/server). Every request is timed; the run's
// server.req_ns latency histogram and server.* counters land in the metrics
// JSONL next to the collector's own counters, and gcstats -latency reads
// them back to correlate GC pauses with request-latency tails.
//
// The per-cycle STW oracle stays armed: a run that loses a live store entry
// or session object exits 1, a wedged run exits 2, exactly like gcstress.
//
// Two modes beyond plain measurement close the loop between the collector
// and the traffic it serves. With -slo-p99 the engine paces on the SLO
// policy: the load generator streams each 20ms window's worst request
// latency into the policy (pacing.LatencyObserver), which trades collector
// CPU for tail latency against the target. With -distill the same seeded
// workload re-runs with collection disabled on an arena sized to never
// collect (Cai & Blackburn's ideal baseline), and the run reports the
// distilled collector cost: throughput delta, latency delta, CPU share.
//
// Examples:
//
//	gcserve -clients 128 -duration 5s
//	gcserve -clients 64 -readfrac 0.9 -churn 500 -metrics serve.jsonl
//	gcserve -clients 256 -burst-period 100ms -burst-duty 0.4 -pacing
//	gcserve -clients 32 -chaos "pool.exhaust=1/4" -require-faults
//	gcserve -clients 64 -slo-p99 5ms -require-slo
//	gcserve -clients 64 -pacing -distill -distill-json cells.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mcgc/internal/distill"
	"mcgc/internal/faultinject"
	"mcgc/internal/live"
	"mcgc/internal/pacing"
	"mcgc/internal/runmeta"
	"mcgc/internal/server"
	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
)

func main() {
	var (
		clients  = flag.Int("clients", 128, "concurrent client goroutines (each is one external mutator)")
		shards   = flag.Int("shards", 8, "store shards (rounded up to a power of two)")
		buckets  = flag.Int("buckets", 64, "bucket-chain root slots per shard")
		keys     = flag.Int("keys", 4096, "key-space size")
		zipf     = flag.Float64("zipf", 0.99, "Zipfian key skew theta (0 = uniform)")
		readFrac = flag.Float64("readfrac", 0.70, "fraction of requests that are GETs")
		delFrac  = flag.Float64("deletefrac", 0.05, "fraction of requests that are DELETEs")
		tchFrac  = flag.Float64("touchfrac", 0.10, "fraction of requests that are session touches")
		valSize  = flag.Int("valsize", 2, "arena objects per stored value")
		burstP   = flag.Duration("burst-period", 0, "request burst period (0 = steady load)")
		burstD   = flag.Float64("burst-duty", 0.5, "fraction of each burst period spent issuing")
		churn    = flag.Int("churn", 400, "mean completed requests between connection churns (0 disables)")
		duration = flag.Duration("duration", 2*time.Second, "run length")
		seed     = flag.Int64("seed", 1, "workload seed")

		objects    = flag.Int("objects", 1<<15, "arena size in objects")
		refs       = flag.Int("refs", 4, "reference slots per object (store needs >= 3)")
		roots      = flag.Int("roots", 8, "root slots per client")
		tracers    = flag.Int("tracers", 2, "dedicated tracer goroutines")
		bg         = flag.Int("bg", 1, "low-priority background tracer goroutines")
		packets    = flag.Int("packets", 256, "work packets in the pool")
		packetCap  = flag.Int("packetcap", 32, "entries per packet")
		allocBatch = flag.Int("allocbatch", 16, "allocation-bit publication batch size")
		cardPasses = flag.Int("cardpasses", 2, "concurrent card cleaning passes per cycle")

		metricsOut = flag.String("metrics", "", "write metrics JSONL to this file")
		traceOut   = flag.String("trace", "", "write Chrome trace_event JSON to this file")

		admitOn  = flag.Bool("admission", false, "enable admission control: shed allocating requests when free-heap headroom drops below the watermark")
		shedWM   = flag.Float64("shed-watermark", 0, "free-heap headroom fraction below which PUTs are shed, touches at twice this (0 = default 0.04)")
		evictN   = flag.Int("evict-batch", 0, "oldest store entries evicted when a PUT hits heap exhaustion (0 = default 16)")
		putRetry = flag.Int("put-retries", 0, "backoff-and-retry rounds a shed PUT gets before giving up (0 = default 2)")
		retryBO  = flag.Duration("retry-backoff", 0, "base of the jittered backoff between shed-put retries (0 = default 200µs)")

		chaos       = flag.String("chaos", "", `fault-injection spec ("list" prints the sites)`)
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-injection seed (independent of -seed)")
		wedgeTO     = flag.Duration("wedge-timeout", 5*time.Second, "abort a cycle making no tracing progress for this long")
		timeout     = flag.Duration("timeout", 0, "kill the whole run after this long with a goroutine dump (0 disables)")
		reqFaults   = flag.Bool("require-faults", false, "exit 1 unless every spec-named fault point fired at least once")
		minOps      = flag.Int64("min-ops", 0, "exit 1 unless at least this many requests completed")
		reqDegraded = flag.Bool("require-degraded", false, "exit 1 unless the overload ladder visibly engaged: nonzero sheds and emergency cycles")
		reqSLO      = flag.Bool("require-slo", false, "exit 1 unless the SLO policy observed latency windows and the merged p99 met the -slo-p99 target")
	)
	// Shared knob vocabulary with gcstress: -localcache/-freeshards/-cardbuf,
	// -name and the full pacing flag set, all bound through the common
	// helper so the same spellings mean the same thing in both CLIs.
	common := live.BindCommonFlags(flag.CommandLine, false)
	flag.Parse()
	common.PrintHints(os.Stderr, "gcserve")

	if *chaos == "list" {
		for _, line := range faultinject.Sites() {
			fmt.Println(line)
		}
		return
	}
	plan, err := faultinject.Parse(*chaos, *chaosSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcserve: %v\n", err)
		os.Exit(1)
	}

	cfg := live.Config{
		Objects:         *objects,
		RefsPerObject:   *refs,
		RootsPerMutator: *roots,
		Mutators:        0,
		ExtMutators:     *clients,
		Tracers:         *tracers,
		BgTracers:       *bg,
		Packets:         *packets,
		PacketCap:       *packetCap,
		AllocBatch:      *allocBatch,
		CardPasses:      *cardPasses,
		Duration:        *duration,
		Seed:            *seed,
	}
	cfg.FaultOptions = live.FaultOptions{Faults: plan, WedgeTimeout: *wedgeTO}
	common.Apply(&cfg)

	col := telemetry.NewCollector(*traceOut != "")
	name := common.RunName(fmt.Sprintf("serve/c=%d/k=%d/z=%.2f", *clients, *keys, *zipf))
	run := col.StartRun(runmeta.Run{
		Exp:     "gcserve",
		Name:    name,
		Seed:    *seed,
		Workers: *clients + *tracers + *bg,
	})
	cfg.Reg = run.Registry
	cfg.TL = run.Timeline

	suite := runmeta.Suite{
		Scale:      "live",
		J:          1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}

	if *timeout > 0 {
		go func() {
			time.Sleep(*timeout)
			fmt.Fprintf(os.Stderr, "gcserve: run exceeded -timeout %v; goroutine dump follows\n", *timeout)
			buf := make([]byte, 1<<20)
			os.Stderr.Write(buf[:runtime.Stack(buf, true)])
			os.Exit(2)
		}()
	}

	storeCfg := server.StoreConfig{
		Shards:    *shards,
		Buckets:   *buckets,
		ValueObjs: *valSize,
	}
	loadCfg := server.LoadConfig{
		Clients:     *clients,
		Keys:        *keys,
		Theta:       *zipf,
		ReadFrac:    *readFrac,
		DeleteFrac:  *delFrac,
		TouchFrac:   *tchFrac,
		BurstPeriod: *burstP,
		BurstDuty:   *burstD,
		ChurnOps:    *churn,
		Seed:        uint64(*seed),
		Duration:    *duration,
		Admission: server.AdmissionConfig{
			Enabled:       *admitOn,
			ShedWatermark: *shedWM,
			RetryBackoff:  *retryBO,
			MaxRetries:    *putRetry,
			EvictBatch:    *evictN,
		},
	}

	rep, res, st, realArm := runServe(cfg, storeCfg, loadCfg)
	// The registry is unsynchronized and driver-owned: the server results
	// flush into it only now, after every client and engine worker is done.
	res.Flush(run.Registry)

	fmt.Println(rep)
	fmt.Printf("store: %d entries live in %d shards\n", st.Len(), st.Config().Shards)
	fmt.Println(res)

	var distRec *distill.Record
	if common.Distill {
		// Distillation baseline: the identical seeded workload with the
		// collector off, on an arena sized from the real run's measured
		// allocations so it never collects (the baseline runs faster, so
		// -distill-mult leaves headroom over the measured count). Telemetry,
		// faults, the ladder and admission shedding are all dropped — the
		// baseline is the ideal the real run is measured against, not
		// another experiment.
		base := cfg
		base.Objects = cfg.Objects + int(rep.ObjectsAllocated)*common.DistillMult
		base.PacingOptions = live.PacingOptions{DisableCollection: true}
		base.LadderOptions = live.LadderOptions{}
		base.FaultOptions = live.FaultOptions{}
		base.ObserveOptions = live.ObserveOptions{}
		baseLoad := loadCfg
		baseLoad.Admission = server.AdmissionConfig{}
		fmt.Printf("distill: re-running with collection disabled (arena %d objects)\n", base.Objects)
		_, _, _, baseArm := runServe(base, storeCfg, baseLoad)
		rec := distill.NewRecord(name, rep.PacingPolicy, realArm, baseArm)
		distRec = &rec
		fmt.Println(rec)
		if common.DistillJSON != "" {
			if err := rec.AppendJSON(common.DistillJSON); err != nil {
				fmt.Fprintf(os.Stderr, "gcserve: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metricsOut != "" {
		writeSink(*metricsOut, func(f *os.File) error { return col.WriteJSONL(f, suite) })
	}
	if *traceOut != "" {
		writeSink(*traceOut, func(f *os.File) error { return col.WriteTrace(f, suite) })
	}

	// Every failure path funnels through one exit: the engine verdict maps to
	// the shared exit-code conventions (live.ExitOK/ExitInvariant/ExitWedge),
	// CLI-level assertions raise ExitInvariant on top, and any nonzero exit
	// prints the one-line repro command — seeds, chaos spec and the non-default
	// shared flags — so a CI failure is rerunnable from the log alone.
	code := live.ReportExit(&rep)
	raise := func(c int) {
		if c > code {
			code = c
		}
	}
	var admRepro []string
	if *admitOn {
		admRepro = append(admRepro, "-admission")
		if *shedWM != 0 {
			admRepro = append(admRepro, fmt.Sprintf("-shed-watermark %g", *shedWM))
		}
		if *evictN != 0 {
			admRepro = append(admRepro, fmt.Sprintf("-evict-batch %d", *evictN))
		}
		if *putRetry != 0 {
			admRepro = append(admRepro, fmt.Sprintf("-put-retries %d", *putRetry))
		}
		if *retryBO != 0 {
			admRepro = append(admRepro, fmt.Sprintf("-retry-backoff %s", *retryBO))
		}
	}
	if rep.Wedged {
		fmt.Fprintf(os.Stderr, "gcserve: %s\n", rep.WedgeDiagnosis)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "gcserve: oracle: %s\n", v)
	}
	if rep.LostObjects > 0 {
		fmt.Fprintf(os.Stderr, "gcserve: oracle lost %d live objects\n", rep.LostObjects)
	}
	if res.Issued != res.Completed+res.Failed {
		fmt.Fprintf(os.Stderr, "gcserve: request accounting broken: issued %d != completed %d + failed %d\n",
			res.Issued, res.Completed, res.Failed)
		raise(live.ExitInvariant)
	}
	if *minOps > 0 && res.Completed < *minOps {
		fmt.Fprintf(os.Stderr, "gcserve: only %d requests completed (-min-ops %d)\n", res.Completed, *minOps)
		raise(live.ExitInvariant)
	}
	if *reqFaults {
		for _, p := range rep.Faults {
			if p.Explicit && p.Fires == 0 {
				fmt.Fprintf(os.Stderr, "gcserve: fault point %s never fired (%d hits)\n", p.Name, p.Hits)
				raise(live.ExitInvariant)
			}
		}
	}
	if *reqSLO {
		if rep.PacingPolicy != "slo" {
			fmt.Fprintln(os.Stderr, "gcserve: -require-slo: SLO policy not active (pass -slo-p99)")
			raise(live.ExitInvariant)
		} else if rep.SLOWindows == 0 {
			fmt.Fprintln(os.Stderr, "gcserve: -require-slo: the policy observed no latency windows (run too short?)")
			raise(live.ExitInvariant)
		} else if p99 := res.Hist.Quantile(stats.P99); p99 > float64(common.SLO.Target) {
			fmt.Fprintf(os.Stderr, "gcserve: -require-slo: merged p99 %s exceeds target %s\n",
				time.Duration(p99), common.SLO.Target)
			raise(live.ExitInvariant)
		}
	}
	if distRec != nil && distRec.BaselineContaminated {
		fmt.Fprintln(os.Stderr, "gcserve: distill baseline contaminated (collected or exhausted); raise -distill-mult")
		raise(live.ExitInvariant)
	}
	if *reqDegraded {
		if res.Shed == 0 {
			fmt.Fprintln(os.Stderr, "gcserve: -require-degraded: no requests shed (is -admission on and the load high enough?)")
			raise(live.ExitInvariant)
		}
		if rep.EmergencyCycles == 0 {
			fmt.Fprintln(os.Stderr, "gcserve: -require-degraded: no emergency collections (is -ladder on and the load high enough?)")
			raise(live.ExitInvariant)
		}
	}
	if code != live.ExitOK {
		extra := append([]string{common.ReproFlags()}, admRepro...)
		fmt.Fprintln(os.Stderr, live.ReproLine("gcserve", *seed, plan, extra...))
		os.Exit(code)
	}
}

// runServe builds and runs one engine+store+loadgen arm, returning the
// engine report, the merged load-generator results, the store (for the
// entries-live print) and the arm's distilled measurement (wall, process
// CPU, completions, latency quantiles, collector activity).
//
// When the engine's pacing policy consumes a latency signal (the SLO
// policy), the load generator's per-window worst latencies are streamed
// into it — this is the feedback loop -slo-p99 closes.
func runServe(cfg live.Config, storeCfg server.StoreConfig, loadCfg server.LoadConfig) (live.Report, server.Results, *server.Store, distill.Arm) {
	eng := live.NewEngine(cfg)
	st := server.NewStore(eng, storeCfg)
	if obs, ok := eng.PacingPolicy().(pacing.LatencyObserver); ok {
		loadCfg.WindowObserver = obs.ObserveLatency
	}
	lg := server.NewLoadGen(eng, st, loadCfg)

	cpu0, wall0 := distill.CPUClock(), time.Now()
	lg.Start()
	rep := eng.Run()
	res := lg.Wait()
	arm := distill.Arm{
		WallNs:      int64(time.Since(wall0)),
		CPUNs:       int64(distill.CPUClock() - cpu0),
		Completed:   res.Completed,
		Failed:      res.Failed,
		Cycles:      rep.Cycles,
		STWNs:       int64(rep.STWTotal),
		AllocFailed: rep.AllocFailed,
	}
	if res.Hist != nil {
		arm.P50Ns = res.Hist.Quantile(stats.P50)
		arm.P99Ns = res.Hist.Quantile(stats.P99)
		arm.P999Ns = res.Hist.Quantile(stats.P999)
	}
	arm.FillThroughput()
	return rep, res, st, arm
}

func writeSink(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcserve: %v\n", err)
		os.Exit(1)
	}
}

// Package mcgc is a from-scratch Go reproduction of "A Parallel,
// Incremental and Concurrent GC for Servers" (Yoav Ossia, Ori Ben-Yitzhak,
// Irit Goft, Elliot K. Kolodner, Victor Leikehman, Avi Owshanko; PLDI
// 2002): the IBM mostly concurrent collector with work packet load
// balancing and fence batching for weak-ordering multiprocessors.
//
// Start with package mcgc/gcsim (the public facade), cmd/gcbench (the
// experiment harness that regenerates every table and figure of the
// paper's evaluation), and the runnable examples under examples/. DESIGN.md
// maps paper sections to packages; EXPERIMENTS.md records paper-vs-measured
// results.
package mcgc

package gcsim

import (
	"strings"
	"testing"

	"mcgc/internal/gctrace"
)

func TestNewDefaults(t *testing.T) {
	vm := New(Options{HeapBytes: 8 << 20})
	o := vm.Options()
	if o.Processors != 4 || o.Collector != CGC || o.TracingRate != 8.0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if vm.CGCCollector() == nil || vm.STWCollector() != nil {
		t.Fatal("collector wiring wrong")
	}
}

func TestSTWSelection(t *testing.T) {
	vm := New(Options{HeapBytes: 8 << 20, Collector: STW})
	if vm.STWCollector() == nil || vm.CGCCollector() != nil {
		t.Fatal("collector wiring wrong")
	}
}

func TestUnknownCollectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{Collector: "zgc"})
}

func TestEndToEndJBBWithCGC(t *testing.T) {
	vm := New(Options{HeapBytes: 16 << 20, Processors: 2, WorkPackets: 256, PacketCapacity: 64})
	jbb := vm.NewJBB(JBBOptions{Warehouses: 2, MaxWarehouses: 2, ResidencyAtMax: 0.5})
	vm.RunFor(3 * Second)
	if jbb.Transactions() == 0 {
		t.Fatal("no transactions")
	}
	if err := jbb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	rep := vm.Report()
	if rep.Cycles == 0 {
		t.Fatal("no GC cycles")
	}
	if rep.Pause.Avg <= 0 {
		t.Fatal("no pause data")
	}
	out := rep.String()
	if !strings.Contains(out, "collector=cgc") || !strings.Contains(out, "pause avg=") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}

func TestEndToEndJavacWithBothCollectors(t *testing.T) {
	for _, col := range []Collector{STW, CGC} {
		vm := New(Options{
			HeapBytes:         8 << 20,
			Processors:        1,
			Collector:         col,
			WorkPackets:       256,
			PacketCapacity:    64,
			BackgroundThreads: 1,
		})
		j := vm.NewJavac(0.7)
		vm.RunFor(4 * Second)
		if j.Err != nil {
			t.Fatalf("%s: %v", col, j.Err)
		}
		if j.Units == 0 {
			t.Fatalf("%s: no units compiled", col)
		}
		if vm.Report().Cycles == 0 {
			t.Fatalf("%s: no GC cycles", col)
		}
	}
}

func TestRunForAdvancesTime(t *testing.T) {
	vm := New(Options{HeapBytes: 8 << 20})
	vm.NewJavac(0.5)
	t0 := vm.Now()
	vm.RunFor(100 * Millisecond)
	if vm.Now().Sub(t0) < 90*Millisecond {
		t.Fatalf("RunFor advanced only to %v", vm.Now())
	}
}

func TestHeadlineShape(t *testing.T) {
	// The reproduction's headline: on the same workload, CGC's average
	// pause is well below STW's, at a modest throughput cost.
	run := func(col Collector) (avgPauseMs float64, tx int64) {
		vm := New(Options{
			HeapBytes:      24 << 20,
			Processors:     4,
			Collector:      col,
			WorkPackets:    512,
			PacketCapacity: 128,
		})
		jbb := vm.NewJBB(JBBOptions{Warehouses: 4, MaxWarehouses: 4, ResidencyAtMax: 0.6, Seed: 7})
		vm.RunFor(4 * Second)
		if err := jbb.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
		rep := vm.Report()
		if rep.Cycles == 0 {
			t.Fatalf("%s: no cycles", col)
		}
		return rep.Pause.Avg.Milliseconds(), jbb.Transactions()
	}
	stwPause, stwTx := run(STW)
	cgcPause, cgcTx := run(CGC)
	if cgcPause > 0.6*stwPause {
		t.Fatalf("CGC pause %.2fms not well below STW %.2fms", cgcPause, stwPause)
	}
	// Throughput cost exists but is bounded (paper: ~10%; allow slack).
	if float64(cgcTx) < 0.6*float64(stwTx) {
		t.Fatalf("CGC throughput %d lost too much vs STW %d", cgcTx, stwTx)
	}
}

func TestEndToEndGenerational(t *testing.T) {
	vm := New(Options{
		HeapBytes:      16 << 20,
		Processors:     2,
		Collector:      GenCGC,
		NurseryBytes:   1 << 20,
		WorkPackets:    256,
		PacketCapacity: 64,
	})
	if vm.Generational() == nil || vm.CGCCollector() == nil {
		t.Fatal("generational wiring wrong")
	}
	jbb := vm.NewJBB(JBBOptions{Warehouses: 2, MaxWarehouses: 2, ResidencyAtMax: 0.5})
	vm.RunFor(3 * Second)
	if err := jbb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	g := vm.Generational()
	if len(g.Minors) == 0 {
		t.Fatal("no minor collections")
	}
	avg, max := g.MinorPauses()
	if avg <= 0 || max < avg {
		t.Fatalf("minor pause stats broken: avg=%v max=%v", avg, max)
	}
}

func TestGCTraceEvents(t *testing.T) {
	var rec recorderSink
	vm := New(Options{
		HeapBytes:      16 << 20,
		Processors:     2,
		WorkPackets:    256,
		PacketCapacity: 64,
		TraceSink:      &rec,
	})
	jbb := vm.NewJBB(JBBOptions{Warehouses: 2, MaxWarehouses: 2, ResidencyAtMax: 0.5})
	vm.RunFor(2 * Second)
	if err := jbb.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if rec.pauseStarts == 0 || rec.pauseEnds != rec.pauseStarts {
		t.Fatalf("pause events unbalanced: %d starts, %d ends", rec.pauseStarts, rec.pauseEnds)
	}
	if rec.cycleStarts == 0 {
		t.Fatal("no cycle-start events")
	}
}

// recorderSink avoids importing internal/gctrace in this public-facing
// test: it implements the Sink interface structurally through the facade.
type recorderSink struct {
	cycleStarts, pauseStarts, pauseEnds int
}

func (r *recorderSink) Emit(e gctrace.Event) {
	switch e.Kind {
	case gctrace.CycleStart:
		r.cycleStarts++
	case gctrace.PauseStart:
		r.pauseStarts++
	case gctrace.PauseEnd:
		r.pauseEnds++
	}
}

// Package gcsim is the public entry point of the reproduction: it wires a
// simulated multiprocessor (internal/machine), a simulated heap and mutator
// runtime (internal/heapsim, internal/mutator), one of the paper's two
// collectors (internal/core), and a workload (internal/workload) into a
// runnable virtual machine.
//
// A minimal session:
//
//	vm := gcsim.New(gcsim.Options{
//		HeapBytes:  64 << 20,
//		Processors: 4,
//		Collector:  gcsim.CGC,
//	})
//	jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8})
//	vm.RunFor(5 * gcsim.Second)
//	fmt.Println(vm.Report())
//	_ = jbb.Transactions()
//
// The collectors, pacing formulas, work packets and card table are faithful
// implementations of "A Parallel, Incremental and Concurrent GC for
// Servers" (Ossia et al., PLDI 2002); see DESIGN.md for the full map from
// paper sections to packages.
package gcsim

import (
	"fmt"
	"io"
	"strings"

	"mcgc/internal/core"
	"mcgc/internal/gctrace"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/pacing"
	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workload"
)

// Re-exported time units so callers need not import internal packages.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Duration and Time are the virtual time types used throughout.
type (
	Duration = vtime.Duration
	Time     = vtime.Time
)

// Collector selects which of the paper's collectors manages the heap.
type Collector string

const (
	// STW is the parallel stop-the-world mark-sweep baseline.
	STW Collector = "stw"
	// CGC is the parallel, incremental, mostly concurrent collector —
	// the paper's contribution.
	CGC Collector = "cgc"
	// GenCGC is the generational extension: a scavenged nursery in front
	// of the mostly concurrent old-space collector (the combination the
	// paper's introduction names as future work).
	GenCGC Collector = "gencgc"
)

// Options configures a VM. Zero values choose the paper's defaults.
type Options struct {
	// HeapBytes is the fixed heap size (default 64 MB).
	HeapBytes int64
	// Processors is the simulated SMP width (default 4, the paper's
	// Netfinity 7000).
	Processors int
	// Collector selects the GC (default CGC).
	Collector Collector

	// TracingRate is the desired allocator tracing rate K0 (default 8.0,
	// the paper's default runs).
	TracingRate float64
	// Pacing optionally overrides the full Section 3 pacing configuration
	// (nil keeps the defaults). TracingRate still wins for K0, so the two
	// knobs cannot disagree.
	Pacing *pacing.Config
	// WorkPackets is the pool size (default 1000); PacketCapacity is the
	// per-packet entry count (default 493).
	WorkPackets    int
	PacketCapacity int
	// BackgroundThreads is the number of low-priority tracing threads
	// (default 4). Set Negative to force zero.
	BackgroundThreads int
	// CardPasses is the number of concurrent card-cleaning passes
	// (default 1; 2 enables the footnote-2 refinement).
	CardPasses int
	// LazySweep defers sweeping out of the pause (Section 7 extension).
	LazySweep bool
	// IncrementalCompaction evacuates one heap area per cycle during the
	// pause (Section 2.3 extension). Ignored when LazySweep is set.
	IncrementalCompaction bool
	// NurseryBytes sizes the GenCGC nursery (default heap/8).
	NurseryBytes int64
	// NoMutatorTracing disables incremental tracing by mutators (the
	// background-only ablation).
	NoMutatorTracing bool

	// CacheBytes is the allocation-cache size (default 16 KB);
	// LargeBytes the large-object threshold (default 2 KB).
	CacheBytes int
	LargeBytes int

	// Costs overrides the calibrated virtual-time cost model.
	Costs *machine.Costs

	// GCTrace, when set, receives a -verbose:gc style line per collection
	// event.
	GCTrace io.Writer
	// TraceSink, when set, receives the structured events directly
	// (programmatic consumers; combined with GCTrace if both are set).
	TraceSink gctrace.Sink

	// Metrics and Timeline, when set, receive the collector's telemetry:
	// Metrics accumulates counters/gauges/histograms, Timeline the span
	// events for the Chrome-trace export. Telemetry only observes virtual
	// time — enabling it changes no simulation result. Call
	// VM.FinishTelemetry after the run to flush end-of-run counters.
	Metrics  *telemetry.Registry
	Timeline *telemetry.Timeline
}

func (o *Options) fill() {
	if o.HeapBytes == 0 {
		o.HeapBytes = 64 << 20
	}
	if o.Processors == 0 {
		o.Processors = 4
	}
	if o.Collector == "" {
		o.Collector = CGC
	}
	if o.TracingRate == 0 {
		o.TracingRate = 8.0
	}
	if o.WorkPackets == 0 {
		o.WorkPackets = 1000
	}
	if o.BackgroundThreads == 0 {
		o.BackgroundThreads = 4
	}
	if o.BackgroundThreads < 0 {
		o.BackgroundThreads = 0
	}
}

// VM is a configured simulation: machine + runtime + collector.
type VM struct {
	opts Options
	m    *machine.Machine
	rt   *mutator.Runtime

	stw *core.STW
	cgc *core.CGC
	gen *core.Generational
}

// New builds a VM.
func New(opts Options) *VM {
	opts.fill()
	var sink gctrace.Sink
	switch {
	case opts.GCTrace != nil && opts.TraceSink != nil:
		sink = gctrace.Multi(&gctrace.TextWriter{W: opts.GCTrace}, opts.TraceSink)
	case opts.GCTrace != nil:
		sink = &gctrace.TextWriter{W: opts.GCTrace}
	case opts.TraceSink != nil:
		sink = opts.TraceSink
	}
	m := machine.New(opts.Processors)
	mcfg := mutator.DefaultConfig()
	if opts.CacheBytes > 0 {
		mcfg.CacheBytes = opts.CacheBytes
	}
	if opts.LargeBytes > 0 {
		mcfg.LargeBytes = opts.LargeBytes
	}
	costs := machine.DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	rt := mutator.NewRuntime(opts.HeapBytes, mcfg, costs)
	vm := &VM{opts: opts, m: m, rt: rt}
	switch opts.Collector {
	case STW:
		vm.stw = core.NewSTW(rt, m, opts.WorkPackets, opts.PacketCapacity, opts.Processors)
		vm.stw.Trace = sink
		vm.stw.AttachTelemetry(opts.Metrics, opts.Timeline)
		rt.SetCollector(vm.stw)
	case GenCGC:
		cfg := core.DefaultCGCConfig()
		cfg.Packets = opts.WorkPackets
		cfg.PacketCap = opts.PacketCapacity
		cfg.Workers = opts.Processors
		cfg.BackgroundThreads = opts.BackgroundThreads
		if opts.Pacing != nil {
			cfg.Pacing = *opts.Pacing
		}
		cfg.Pacing.K0 = opts.TracingRate
		if opts.CardPasses > 0 {
			cfg.CardPasses = opts.CardPasses
		}
		cfg.LazySweep = opts.LazySweep
		cfg.Compaction = opts.IncrementalCompaction
		cfg.MutatorTracing = !opts.NoMutatorTracing
		cfg.Trace = sink
		cfg.Metrics = opts.Metrics
		cfg.Timeline = opts.Timeline
		vm.gen = core.NewGenerational(rt, m, core.GenConfig{
			NurseryBytes: opts.NurseryBytes,
			CGC:          cfg,
		})
		vm.cgc = vm.gen.Old()
		rt.SetCollector(vm.gen)
		vm.gen.SpawnBackground()
	case CGC:
		cfg := core.DefaultCGCConfig()
		cfg.Packets = opts.WorkPackets
		cfg.PacketCap = opts.PacketCapacity
		cfg.Workers = opts.Processors
		cfg.BackgroundThreads = opts.BackgroundThreads
		if opts.Pacing != nil {
			cfg.Pacing = *opts.Pacing
		}
		cfg.Pacing.K0 = opts.TracingRate
		if opts.CardPasses > 0 {
			cfg.CardPasses = opts.CardPasses
		}
		cfg.LazySweep = opts.LazySweep
		cfg.Compaction = opts.IncrementalCompaction
		cfg.MutatorTracing = !opts.NoMutatorTracing
		cfg.Trace = sink
		cfg.Metrics = opts.Metrics
		cfg.Timeline = opts.Timeline
		vm.cgc = core.NewCGC(rt, m, cfg)
		rt.SetCollector(vm.cgc)
		vm.cgc.SpawnBackground()
	default:
		panic(fmt.Sprintf("gcsim: unknown collector %q", opts.Collector))
	}
	return vm
}

// Options returns the effective configuration.
func (vm *VM) Options() Options { return vm.opts }

// Machine exposes the simulated multiprocessor.
func (vm *VM) Machine() *machine.Machine { return vm.m }

// Runtime exposes the mutator runtime (heap, card table, thread registry).
func (vm *VM) Runtime() *mutator.Runtime { return vm.rt }

// CGCCollector returns the mostly concurrent collector (for GenCGC, the
// old-space collector), or nil when the VM runs the baseline.
func (vm *VM) CGCCollector() *core.CGC { return vm.cgc }

// Generational returns the generational wrapper, or nil unless the VM runs
// GenCGC.
func (vm *VM) Generational() *core.Generational { return vm.gen }

// STWCollector returns the baseline collector, or nil.
func (vm *VM) STWCollector() *core.STW { return vm.stw }

// Now returns the current virtual time.
func (vm *VM) Now() Time { return vm.m.Now() }

// FinishTelemetry flushes the run's cumulative counters (pool CAS/contention
// totals, card and fence accounting) into the configured metrics registry.
// Call once after the last RunFor/RunUntil; a no-op when Options.Metrics and
// Options.Timeline were nil.
func (vm *VM) FinishTelemetry() {
	if vm.cgc != nil {
		vm.cgc.FinishTelemetry()
	} else if vm.stw != nil {
		vm.stw.FinishTelemetry()
	}
}

// RunFor advances the simulation by d of virtual time.
func (vm *VM) RunFor(d Duration) Time { return vm.m.Run(vm.m.Now().Add(d)) }

// RunUntil advances the simulation to the given instant.
func (vm *VM) RunUntil(t Time) Time { return vm.m.Run(t) }

// Cycles returns the collection cycles completed so far.
func (vm *VM) Cycles() []core.CycleStats {
	if vm.cgc != nil {
		return vm.cgc.Cycles
	}
	return vm.stw.Cycles
}

// NewJBB attaches a warehouse transaction workload.
func (vm *VM) NewJBB(opts JBBOptions) *workload.JBB {
	return workload.NewJBB(vm.rt, vm.m, opts.toConfig(vm.opts.HeapBytes))
}

// NewJavac attaches the single-threaded compiler workload.
func (vm *VM) NewJavac(peakResidency float64) *workload.Javac {
	if peakResidency == 0 {
		peakResidency = 0.7
	}
	return workload.NewJavac(vm.rt, vm.m, workload.DefaultJavacConfig(vm.opts.HeapBytes, peakResidency))
}

// JBBOptions configures the warehouse workload at the facade level.
type JBBOptions struct {
	// Warehouses (default 8) and TerminalsPerWarehouse (default 1; the
	// paper's pBOB uses 25).
	Warehouses            int
	TerminalsPerWarehouse int
	// ResidencyAtMax is the target heap residency when running
	// MaxWarehouses warehouses (default 0.6 at 8, the paper's setup).
	ResidencyAtMax float64
	MaxWarehouses  int
	// ThinkTime enables pBOB-style idle time (default none).
	ThinkTime Duration
	// TxGarbageObjects and BlockReplacePercent tune the transaction mix:
	// short-lived temporaries per transaction, and the chance (0-100) a
	// transaction replaces a block of retained data. Defaults follow the
	// workload package. Replacement allocates long-lived data, so a low
	// percentage gives the high young mortality generational collection
	// wants.
	TxGarbageObjects    int
	BlockReplacePercent int
	Seed                int64
}

func (o JBBOptions) toConfig(heapBytes int64) workload.JBBConfig {
	if o.Warehouses == 0 {
		o.Warehouses = 8
	}
	if o.MaxWarehouses == 0 {
		o.MaxWarehouses = 8
	}
	if o.ResidencyAtMax == 0 {
		o.ResidencyAtMax = 0.6
	}
	cfg := workload.DefaultJBBConfig(o.Warehouses, heapBytes, o.ResidencyAtMax, o.MaxWarehouses)
	if o.TerminalsPerWarehouse > 0 {
		cfg.TerminalsPerWarehouse = o.TerminalsPerWarehouse
	}
	cfg.ThinkTime = o.ThinkTime
	if o.TxGarbageObjects > 0 {
		cfg.TxGarbageObjects = o.TxGarbageObjects
	}
	if o.BlockReplacePercent > 0 {
		cfg.BlockReplacePercent = o.BlockReplacePercent
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// Report summarizes a run in the shape the paper reports: pause statistics
// with their mark and sweep components, cycle counts by outcome, and GC
// overhead indicators.
type Report struct {
	Collector    Collector
	Cycles       int
	ConcDone     int // cycles whose concurrent phase finished all work
	AllocFail    int // cycles cut short by allocation failure
	Direct       int // degenerate full stop-the-world cycles
	Pause        stats.DurationSummary
	Mark         stats.DurationSummary
	Sweep        stats.DurationSummary
	StopLatency  stats.DurationSummary
	PauseP95     Duration
	AvgLiveAfter int64

	// Minor-collection statistics (GenCGC only; zero otherwise).
	Minors        int
	MinorPause    stats.DurationSummary
	PromotedBytes int64
}

// Report computes the summary for everything run so far.
func (vm *VM) Report() Report {
	cycles := vm.Cycles()
	r := Report{Collector: vm.opts.Collector, Cycles: len(cycles)}
	var lat []Duration
	for _, p := range vm.m.Pauses {
		lat = append(lat, p.StopLatency)
	}
	r.StopLatency = stats.Summarize(lat)
	var liveSum int64
	for i := range cycles {
		switch cycles[i].Reason {
		case "conc-done":
			r.ConcDone++
		case "alloc-failure":
			r.AllocFail++
		default:
			r.Direct++
		}
		liveSum += cycles[i].LiveAfter
	}
	if len(cycles) > 0 {
		r.AvgLiveAfter = liveSum / int64(len(cycles))
	}
	r.Pause, r.Mark, r.Sweep = core.SummarizePauses(cycles)
	var pauses []Duration
	for i := range cycles {
		pauses = append(pauses, cycles[i].Pause)
	}
	r.PauseP95 = stats.Percentile(pauses, 0.95)
	if vm.gen != nil {
		r.Minors = len(vm.gen.Minors)
		var ds []Duration
		for _, m := range vm.gen.Minors {
			ds = append(ds, m.Pause)
		}
		r.MinorPause = stats.Summarize(ds)
		r.PromotedBytes = vm.gen.PromotedBytes
	}
	return r
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "collector=%s cycles=%d (conc-done=%d alloc-failure=%d direct=%d)\n",
		r.Collector, r.Cycles, r.ConcDone, r.AllocFail, r.Direct)
	fmt.Fprintf(&b, "pause avg=%v p95=%v max=%v | mark avg=%v | sweep avg=%v | stop-latency avg=%v\n",
		r.Pause.Avg, r.PauseP95, r.Pause.Max, r.Mark.Avg, r.Sweep.Avg, r.StopLatency.Avg)
	fmt.Fprintf(&b, "avg occupancy after GC: %d KB", r.AvgLiveAfter>>10)
	if r.Minors > 0 {
		fmt.Fprintf(&b, "\nminors: %d, avg=%v max=%v, promoted %d KB",
			r.Minors, r.MinorPause.Avg, r.MinorPause.Max, r.PromotedBytes>>10)
	}
	return b.String()
}
